package profio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// temporalProfile builds a sidecar-bearing profile: the sampleProfile
// trees plus a three-window series touching the heap and static trees.
func temporalProfile(rank, thread int) *cct.Profile {
	p := sampleProfile(rank, thread)
	var heapLeaf, staticLeaf *cct.Node
	p.Trees[cct.ClassHeap].Walk(func(n *cct.Node, _ int) bool {
		if n.NumChildren() == 0 {
			heapLeaf = n
		}
		return true
	})
	p.Trees[cct.ClassStatic].Walk(func(n *cct.Node, _ int) bool {
		if n.NumChildren() == 0 {
			staticLeaf = n
		}
		return true
	})
	mk := func(samples, lat uint64) metric.Vector {
		var v metric.Vector
		v[metric.Samples] = samples
		v[metric.Latency] = lat
		return v
	}
	p.Temporal = &cct.TimeSeries{
		Width: 4096,
		Windows: []cct.TimeWindow{
			{Index: 0, Deltas: []cct.TimeDelta{
				{Class: cct.ClassStatic, Node: staticLeaf, Metrics: mk(1, 40)},
				{Class: cct.ClassHeap, Node: heapLeaf, Metrics: mk(2, 600)},
			}},
			{Index: 1, Deltas: []cct.TimeDelta{
				{Class: cct.ClassHeap, Node: heapLeaf, Metrics: mk(1, 300)},
			}},
			{Index: 7, Deltas: []cct.TimeDelta{
				{Class: cct.ClassHeap, Node: heapLeaf.Parent(), Metrics: mk(4, 100)},
			}},
		},
	}
	return p
}

// seriesEqual compares two sidecars structurally: same windows, and each
// delta resolves to a node with the same root path, class, and metrics.
func seriesEqual(t *testing.T, a, b *cct.TimeSeries) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("sidecar presence differs: %v vs %v", a != nil, b != nil)
	}
	if a == nil {
		return
	}
	if a.Width != b.Width || len(a.Windows) != len(b.Windows) {
		t.Fatalf("series shape differs: width %d/%d, windows %d/%d",
			a.Width, b.Width, len(a.Windows), len(b.Windows))
	}
	key := func(d *cct.TimeDelta) string {
		var sb strings.Builder
		for _, f := range d.Node.Path() {
			sb.WriteString(f.String())
			sb.WriteByte('|')
		}
		return d.Class.String() + "!" + sb.String()
	}
	for i := range a.Windows {
		wa, wb := &a.Windows[i], &b.Windows[i]
		if wa.Index != wb.Index {
			t.Fatalf("window %d index %d vs %d", i, wa.Index, wb.Index)
		}
		ma := map[string]metric.Vector{}
		for j := range wa.Deltas {
			d := &wa.Deltas[j]
			v := ma[key(d)]
			v.Add(&d.Metrics)
			ma[key(d)] = v
		}
		mb := map[string]metric.Vector{}
		for j := range wb.Deltas {
			d := &wb.Deltas[j]
			v := mb[key(d)]
			v.Add(&d.Metrics)
			mb[key(d)] = v
		}
		if len(ma) != len(mb) {
			t.Fatalf("window %d: %d vs %d distinct deltas", i, len(ma), len(mb))
		}
		for k, va := range ma {
			if vb, ok := mb[k]; !ok || va != vb {
				t.Fatalf("window %d delta %q: %v vs %v (present %v)", i, k, va.String(), vb.String(), ok)
			}
		}
	}
}

func TestTemporalRoundTrip(t *testing.T) {
	p := temporalProfile(3, 17)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	profilesEqual(t, p, got)
	seriesEqual(t, p.Temporal, got.Temporal)

	// Decoded nodes must belong to the decoded trees, not dangle.
	for _, w := range got.Temporal.Windows {
		for _, d := range w.Deltas {
			root := d.Node
			for root.Parent() != nil {
				root = root.Parent()
			}
			if root != got.Trees[d.Class].Root {
				t.Fatal("sidecar delta not anchored in its class tree")
			}
		}
	}

	// Byte stability: encode → decode → encode is the identity.
	var buf2 bytes.Buffer
	if err := WriteProfile(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("temporal profile re-encoding differs")
	}
}

func TestTemporalAbsentStaysAbsent(t *testing.T) {
	// A profile without a sidecar writes the exact pre-trailer byte
	// stream and reads back with nil Temporal.
	p := sampleProfile(1, 2)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Temporal != nil {
		t.Fatal("sidecar materialized from nowhere")
	}
	// An empty series behaves like no series.
	p.Temporal = &cct.TimeSeries{Width: 64}
	var buf2 bytes.Buffer
	if err := WriteProfile(&buf2, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("empty sidecar changed the encoding")
	}
}

// appendTrailer frames payload as a trailer section with the given magic.
func appendTrailer(img []byte, magic uint32, payload []byte) []byte {
	out := append([]byte{}, img...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], magic)
	out = append(out, u32[:]...)
	var n [binary.MaxVarintLen64]byte
	out = append(out, n[:binary.PutUvarint(n[:], uint64(len(payload)))]...)
	out = append(out, payload...)
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(payload))
	return append(out, u32[:]...)
}

func TestUnknownTrailerSkipped(t *testing.T) {
	p := temporalProfile(0, 0)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	img := appendTrailer(buf.Bytes(), 0x58545241 /* "XTRA" */, []byte("future section"))
	got, err := ReadProfile(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("unknown trailer must be skipped, got %v", err)
	}
	profilesEqual(t, p, got)
	seriesEqual(t, p.Temporal, got.Temporal)
	if _, err := ValidateV2Profile(bytes.NewReader(img)); err != nil {
		t.Fatalf("validate rejected unknown trailer: %v", err)
	}
}

func TestCorruptTrailerRejectedStrict(t *testing.T) {
	p := temporalProfile(0, 0)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	img := append([]byte{}, buf.Bytes()...)
	img[len(img)-6] ^= 0x40 // inside the sidecar payload
	if _, err := ReadProfile(bytes.NewReader(img)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("strict read of damaged sidecar: %v, want checksum error", err)
	}
	// Truncated mid-trailer is a truncation, not a silent success.
	if _, err := ReadProfile(bytes.NewReader(img[:len(img)-8])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated trailer: %v, want ErrTruncated", err)
	}
}

func TestTemporalNodeDeltaOverflowRejected(t *testing.T) {
	// A same-class node-index delta that wraps uint64 lands back inside
	// the bounds check (1 + (2^64-1) ≡ 0), silently re-attributing the
	// delta to the root. The decoder must reject the wrap itself.
	p := sampleProfile(0, 0)
	var base bytes.Buffer
	if err := WriteProfile(&base, p); err != nil {
		t.Fatal(err)
	}
	var pl []byte
	var tmp [binary.MaxVarintLen64]byte
	uv := func(x uint64) { pl = append(pl, tmp[:binary.PutUvarint(tmp[:], x)]...) }
	uv(4096) // width
	uv(1)    // one window
	uv(0)    // at index 0
	uv(2)    // two entries
	pl = append(pl, byte(cct.ClassHeap))
	uv(1) // entry 1: heap node 1, absolute
	pl = append(pl, 0)
	pl = append(pl, byte(cct.ClassHeap))
	uv(^uint64(0)) // entry 2: delta wraps back to node 0
	pl = append(pl, 0)
	img := appendTrailer(base.Bytes(), TemporalMagic, pl)
	if _, err := ReadProfile(bytes.NewReader(img)); err == nil || !strings.Contains(err.Error(), "node index overflows") {
		t.Fatalf("wrapping node delta not rejected: %v", err)
	}
	// Salvage still recovers every tree; only the sidecar is lost.
	s, err := SalvageProfile(bytes.NewReader(img), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Trees != cct.NumClasses || s.Lost != 0 {
		t.Fatalf("trees %d lost %d, want %d/0", s.Trees, s.Lost, cct.NumClasses)
	}
	if s.Profile.Temporal != nil {
		t.Fatal("wrapping sidecar survived salvage")
	}
	if len(s.Errs) == 0 {
		t.Fatal("rejected sidecar produced no salvage note")
	}
}

func TestSalvageDamagedSidecarKeepsTrees(t *testing.T) {
	p := temporalProfile(5, 9)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"payload bit flip": func(img []byte) []byte {
			img[len(img)-6] ^= 0x40
			return img
		},
		"truncated trailer": func(img []byte) []byte {
			return img[:len(img)-8]
		},
		"trailer crc damaged": func(img []byte) []byte {
			img[len(img)-1] ^= 0x01
			return img
		},
	} {
		t.Run(name, func(t *testing.T) {
			s, err := SalvageProfile(bytes.NewReader(mutate(append([]byte{}, buf.Bytes()...))), nil)
			if err != nil {
				t.Fatal(err)
			}
			if s.Trees != cct.NumClasses || s.Lost != 0 {
				t.Fatalf("trees %d lost %d, want %d/0", s.Trees, s.Lost, cct.NumClasses)
			}
			if len(s.Errs) == 0 {
				t.Fatal("damaged sidecar produced no salvage note")
			}
			if s.Intact() {
				t.Fatal("damaged file reported intact")
			}
			if s.Profile.Temporal != nil {
				t.Fatal("damaged sidecar survived salvage")
			}
			if !s.SidecarOnly {
				t.Fatal("sidecar-only damage not classified as such")
			}
			profilesEqual(t, p, s.Profile)
		})
	}
}

func TestSalvageDamagedTreeDropsSidecar(t *testing.T) {
	// When a tree section is damaged, sidecar deltas referencing it can no
	// longer be anchored; the decoder must reject the sidecar rather than
	// resurrect data from a dropped tree.
	p := temporalProfile(0, 0)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	img := append([]byte{}, buf.Bytes()...)
	// Walk the section seams: header, then trees. Flip a byte inside the
	// heap tree's payload (section index 1 + int(cct.ClassHeap)).
	pos := 8
	target := 1 + int(cct.ClassHeap)
	for s := 0; ; s++ {
		n, k := binary.Uvarint(img[pos:])
		if k <= 0 {
			t.Fatal("bad seed image")
		}
		if s == target {
			img[pos+k+int(n)/2] ^= 0x20
			break
		}
		pos += k + int(n) + 4
	}
	s, err := SalvageProfile(bytes.NewReader(img), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Lost != 1 || s.Trees != cct.NumClasses-1 {
		t.Fatalf("trees %d lost %d, want %d/1", s.Trees, s.Lost, cct.NumClasses)
	}
	if s.Profile.Temporal != nil {
		t.Fatal("sidecar referencing a lost tree must be dropped")
	}
	if s.SidecarOnly {
		t.Fatal("tree damage misclassified as sidecar-only")
	}
}

// FuzzTemporalSection throws arbitrary bytes at the sidecar decoder two
// ways: framed as a checksum-valid DCPT trailer (so the decoder itself is
// always reached) and appended raw after the footer. Neither may panic;
// salvage must still recover every tree.
func FuzzTemporalSection(f *testing.F) {
	var base bytes.Buffer
	if err := WriteProfile(&base, sampleProfile(3, 17)); err != nil {
		f.Fatal(err)
	}
	var withSidecar bytes.Buffer
	if err := WriteProfile(&withSidecar, temporalProfile(3, 17)); err != nil {
		f.Fatal(err)
	}
	// The valid sidecar payload itself, so the fuzzer mutates from a
	// structurally interesting point.
	rest := withSidecar.Bytes()[len(base.Bytes())+4:] // skip trailer magic
	n, k := binary.Uvarint(rest)
	if k <= 0 {
		f.Fatal("seed image: bad sidecar framing")
	}
	f.Add(append([]byte{}, rest[k:k+int(n)]...))
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x01, 0x01, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		framed := appendTrailer(base.Bytes(), TemporalMagic, data)
		if p, err := ReadProfile(bytes.NewReader(framed)); err == nil {
			var out bytes.Buffer
			if err := WriteProfile(&out, p); err != nil {
				t.Fatalf("decoded temporal profile failed to re-encode: %v", err)
			}
		}
		s, err := SalvageProfile(bytes.NewReader(framed), nil)
		if err != nil {
			t.Fatalf("salvage failed on framed sidecar: %v", err)
		}
		if s.Trees != cct.NumClasses {
			t.Fatalf("framed sidecar cost %d trees", cct.NumClasses-s.Trees)
		}
		// Raw append: arbitrary post-footer garbage.
		raw := append(append([]byte{}, base.Bytes()...), data...)
		if _, err := SalvageProfile(bytes.NewReader(raw), nil); err != nil {
			t.Fatalf("salvage failed on raw trailer bytes: %v", err)
		}
	})
}
