package profio

import (
	"bytes"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

func validateTestProfile() *cct.Profile {
	p := cct.NewProfile(3, 7, "IBS@4096")
	var v metric.Vector
	v[metric.Samples] = 5
	v[metric.Latency] = 900
	p.Trees[cct.ClassHeap].AddSample([]cct.Frame{
		{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
		{Kind: cct.KindStmt, Module: "exe", Name: "main", File: "main.c", Line: 12},
	}, &v)
	p.Trees[cct.ClassStatic].AddSample([]cct.Frame{
		{Kind: cct.KindStaticVar, Module: "exe", Name: "grid", File: "main.c"},
	}, &v)
	return p
}

func TestValidateProfileIntact(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfile(&buf, validateTestProfile()); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	info, err := ValidateV2Profile(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("intact profile rejected: %v", err)
	}
	if info.Rank != 3 || info.Thread != 7 || info.Event != "IBS@4096" {
		t.Errorf("identity = %d/%d/%q, want 3/7/IBS@4096", info.Rank, info.Thread, info.Event)
	}
	if info.Version != Version {
		t.Errorf("version = %d, want %d", info.Version, Version)
	}
	if info.Nodes == 0 {
		t.Error("no nodes counted")
	}
	if info.Bytes != int64(len(enc)) {
		t.Errorf("bytes = %d, want stream length %d", info.Bytes, len(enc))
	}
}

// Every single-bit flip anywhere in the stream must be rejected — the
// property that makes accept-at-ingest a real guarantee, not a smoke test.
func TestValidateProfileRejectsEveryBitFlip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfile(&buf, validateTestProfile()); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for off := range enc {
		for bit := uint(0); bit < 8; bit++ {
			damaged := append([]byte(nil), enc...)
			damaged[off] ^= 1 << bit
			if _, err := ValidateV2Profile(bytes.NewReader(damaged)); err == nil {
				t.Fatalf("flip of byte %d bit %d accepted", off, bit)
			}
		}
	}
}

func TestValidateProfileRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfile(&buf, validateTestProfile()); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for _, cut := range []int{0, 1, 4, len(enc) / 2, len(enc) - 1} {
		if _, err := ValidateV2Profile(bytes.NewReader(enc[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage after a complete profile is equally invalid.
	if _, err := ValidateV2Profile(bytes.NewReader(append(append([]byte(nil), enc...), 0xAB))); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestValidateProfileRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{nil, {0}, []byte("not a profile at all"), bytes.Repeat([]byte{0xFF}, 64)} {
		if _, err := ValidateProfile(bytes.NewReader(in)); err == nil {
			t.Errorf("garbage %q accepted", in)
		}
	}
}

// A valid v1 stream passes generic validation but not the v2-only gate:
// without per-section CRCs the service could never distinguish at-rest
// damage from writer output.
func TestValidateV2RejectsVersion1(t *testing.T) {
	enc := encodeV1(t, validateTestProfile())
	info, err := ValidateProfile(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("valid v1 stream failed generic validation: %v", err)
	}
	if info.Version != Version1 {
		t.Errorf("version = %d, want %d", info.Version, Version1)
	}
	if _, err := ValidateV2Profile(bytes.NewReader(enc)); err == nil {
		t.Error("v1 stream accepted by v2-only validator")
	}
}
