package profio

// Section index: random-access decode support. v2/v3 files are a sequence
// of independently framed, CRC'd sections, so their boundaries can be
// located by walking length prefixes alone — no payload is decoded, no
// checksum verified, no string touched. The index is what lets a single
// file's class trees decode concurrently (ReadProfileAt): each goroutine
// reads its section's byte range and decodes it against the shared,
// immutable header state.
//
// The parallel path is deliberately all-or-nothing: any damage — a bad
// checksum, a truncated section, a record-level failure — makes
// ReadProfileAt return an error without trying to resync, and the caller
// falls back to the sequential Reader, whose salvage semantics are the
// ones every error-path test pins down. Fast path fast, slow path
// bit-identical to what it always was.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"dcprof/internal/cct"
)

// SectionKind discriminates the entries of a SectionIndex.
type SectionKind uint8

const (
	// SectionHeader is the identification + string table (+ v3 frame
	// table) section.
	SectionHeader SectionKind = iota
	// SectionTree is one storage-class tree section.
	SectionTree
	// SectionTrailer is a tagged post-footer section (temporal sidecar or
	// a future/unknown magic).
	SectionTrailer
)

// SectionInfo locates one section's payload without decoding it.
type SectionInfo struct {
	// Kind tags the section.
	Kind SectionKind
	// Class is the storage class of a SectionTree entry.
	Class cct.Class
	// Magic is the tag of a SectionTrailer entry.
	Magic uint32
	// Offset is the absolute byte offset of the section payload.
	Offset int64
	// Len is the payload length in bytes.
	Len int64
	// CRC is the stored checksum. Indexing records it without verifying;
	// verification happens when the payload is actually read.
	CRC uint32
}

// SectionIndex is the section layout of one v2/v3 profile file.
type SectionIndex struct {
	// Version is the file's format version (Version2 or Version).
	Version uint32
	// FooterCount is the writer-recorded total node count from the footer
	// (whose own integrity is verified during indexing — it is a handful
	// of bytes).
	FooterCount uint64
	// Sections lists every section in file order: header, one tree per
	// storage class, then any trailers.
	Sections []SectionInfo
}

// Header returns the header section entry.
func (ix *SectionIndex) Header() SectionInfo { return ix.Sections[0] }

// Trees returns the storage-class tree section entries in class order.
func (ix *SectionIndex) Trees() []SectionInfo {
	return ix.Sections[1 : 1+cct.NumClasses]
}

// Trailers returns the post-footer trailer section entries.
func (ix *SectionIndex) Trailers() []SectionInfo {
	return ix.Sections[1+cct.NumClasses:]
}

// IndexSections walks a v2/v3 image's framing and returns the location of
// every section. Payloads are skipped, not read: indexing a file costs a
// few dozen bytes of I/O regardless of its size. v1 files have no framing
// and return an error.
func IndexSections(r io.ReaderAt, size int64) (*SectionIndex, error) {
	var pre [8]byte
	if _, err := r.ReadAt(pre[:], 0); err != nil {
		return nil, fmt.Errorf("profio: index: reading preamble: %w", wrapEOF(err))
	}
	if m := binary.LittleEndian.Uint32(pre[:4]); m != Magic {
		return nil, fmt.Errorf("profio: bad magic %#x", m)
	}
	v := binary.LittleEndian.Uint32(pre[4:])
	switch v {
	case Version2, Version:
	case Version1:
		return nil, fmt.Errorf("profio: v1 files have no section framing to index")
	default:
		return nil, fmt.Errorf("profio: unsupported version %d", v)
	}

	ix := &SectionIndex{Version: v}
	off := int64(8)
	uv := func(what string) (uint64, error) {
		var buf [binary.MaxVarintLen64]byte
		n, err := r.ReadAt(buf[:], off)
		if n == 0 {
			return 0, fmt.Errorf("profio: index: %s: %w (%v)", what, ErrTruncated, err)
		}
		u, k := binary.Uvarint(buf[:n])
		if k <= 0 {
			return 0, fmt.Errorf("profio: index: %s: %w (bad varint)", what, ErrTruncated)
		}
		off += int64(k)
		return u, nil
	}
	u32 := func(what string) (uint32, error) {
		var buf [4]byte
		if _, err := r.ReadAt(buf[:], off); err != nil {
			return 0, fmt.Errorf("profio: index: %s: %w", what, wrapEOF(err))
		}
		off += 4
		return binary.LittleEndian.Uint32(buf[:]), nil
	}

	for s := 0; s < 1+cct.NumClasses; s++ {
		what := "header"
		if s > 0 {
			what = fmt.Sprintf("tree %d", s-1)
		}
		n, err := uv(what + " length")
		if err != nil {
			return nil, err
		}
		if n > maxSection {
			return nil, fmt.Errorf("profio: index: %s: unreasonable section size %d", what, n)
		}
		info := SectionInfo{Kind: SectionHeader, Offset: off, Len: int64(n)}
		if s > 0 {
			info.Kind, info.Class = SectionTree, cct.Class(s-1)
		}
		off += int64(n)
		if off+4 > size {
			return nil, fmt.Errorf("profio: index: %s: %w (section exceeds file)", what, ErrTruncated)
		}
		crc, err := u32(what + " checksum")
		if err != nil {
			return nil, err
		}
		info.CRC = crc
		ix.Sections = append(ix.Sections, info)
	}

	// Footer. Its integrity metadata is a few bytes, so indexing verifies
	// it outright — the parallel reader needs the count anyway.
	fm, err := u32("footer magic")
	if err != nil {
		return nil, err
	}
	if fm != FooterMagic {
		return nil, fmt.Errorf("profio: index: footer: bad magic %#x", fm)
	}
	cntStart := off
	count, err := uv("footer count")
	if err != nil {
		return nil, err
	}
	raw := make([]byte, off-cntStart)
	if _, err := r.ReadAt(raw, cntStart); err != nil {
		return nil, fmt.Errorf("profio: index: footer: %w", wrapEOF(err))
	}
	stored, err := u32("footer checksum")
	if err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(raw); got != stored {
		telCRCFailures.Inc()
		return nil, fmt.Errorf("profio: index: footer: %w: computed %08x, stored %08x", ErrChecksum, got, stored)
	}
	ix.FooterCount = count

	// Trailers until end of file.
	for off < size {
		m, err := u32("trailer magic")
		if err != nil {
			return nil, err
		}
		n, err := uv("trailer length")
		if err != nil {
			return nil, err
		}
		if n > maxSection {
			return nil, fmt.Errorf("profio: index: trailer %#x: unreasonable section size %d", m, n)
		}
		info := SectionInfo{Kind: SectionTrailer, Magic: m, Offset: off, Len: int64(n)}
		off += int64(n)
		if off+4 > size {
			return nil, fmt.Errorf("profio: index: trailer %#x: %w (section exceeds file)", m, ErrTruncated)
		}
		crc, err := u32("trailer checksum")
		if err != nil {
			return nil, err
		}
		info.CRC = crc
		ix.Sections = append(ix.Sections, info)
	}
	return ix, nil
}

// readSectionAt reads one indexed section payload and verifies its
// checksum — the random-access analogue of readSection.
func readSectionAt(r io.ReaderAt, info SectionInfo, what string) ([]byte, error) {
	buf := make([]byte, info.Len)
	if _, err := r.ReadAt(buf, info.Offset); err != nil {
		telTruncations.Inc()
		return nil, fmt.Errorf("%s: %w", what, wrapEOF(err))
	}
	telReadBytes.Add(uint64(info.Len) + 4)
	if got := crc32.ChecksumIEEE(buf); got != info.CRC {
		telCRCFailures.Inc()
		return nil, fmt.Errorf("%s: %w: computed %08x, stored %08x", what, ErrChecksum, got, info.CRC)
	}
	telReadSections.Inc()
	return buf, nil
}

// ReadProfileAt decodes one profile from a random-access image with the
// storage-class tree sections decoded concurrently, up to `parallel` at a
// time. Strings are canonicalized through in (nil skips canonicalization).
// It returns the profile and the number of node records decoded.
//
// Every integrity check the sequential reader performs is performed here —
// section checksums, record validation, footer count, trailer decode — but
// on ANY failure the whole read fails: resync and salvage stay the
// sequential Reader's job, so callers should fall back to it on error.
func ReadProfileAt(r io.ReaderAt, size int64, in *Intern, parallel int) (*cct.Profile, int, error) {
	ix, err := IndexSections(r, size)
	if err != nil {
		return nil, 0, err
	}

	// Header first: tree decode needs the string table (and frame table).
	payload, err := readSectionAt(r, ix.Header(), "header")
	if err != nil {
		return nil, 0, fmt.Errorf("profio: %w", err)
	}
	d := &Reader{version: ix.Version}
	hr := bufio.NewReader(bytes.NewReader(payload))
	if err := d.parseHeader(hr, in); err != nil {
		return nil, 0, err
	}
	if ix.Version == Version {
		if err := d.parseFrameTable(hr); err != nil {
			return nil, 0, err
		}
	}
	if _, err := hr.ReadByte(); err != io.EOF {
		return nil, 0, fmt.Errorf("profio: header: trailing bytes in section")
	}

	// Tree sections, concurrently. The string and frame tables are
	// immutable now; each goroutine gets its own treeDecoder so the v1/v2
	// frame memo is never shared.
	if parallel < 1 {
		parallel = 1
	}
	p := cct.NewProfile(d.rank, d.thread, d.event)
	var (
		wg    sync.WaitGroup
		sem   = make(chan struct{}, parallel)
		errs  [cct.NumClasses]error
		total int
	)
	var counts [cct.NumClasses]int
	for ci, info := range ix.Trees() {
		wg.Add(1)
		sem <- struct{}{}
		go func(ci int, info SectionInfo) {
			defer wg.Done()
			defer func() { <-sem }()
			payload, err := readSectionAt(r, info, fmt.Sprintf("tree %d", ci))
			if err != nil {
				errs[ci] = fmt.Errorf("profio: %w", err)
				return
			}
			dec := treeDecoder{strs: d.dec.strs, frameTab: d.dec.frameTab}
			t := cct.New()
			pr := bufio.NewReader(bytes.NewReader(payload))
			var nodes []*cct.Node
			if ix.Version == Version {
				nodes, err = dec.readTreeV3(pr, t)
			} else {
				nodes, err = dec.readTree(pr, t)
			}
			if err == nil {
				if _, e := pr.ReadByte(); e != io.EOF {
					err = fmt.Errorf("trailing bytes in tree section")
				}
			}
			if err != nil {
				errs[ci] = fmt.Errorf("profio: tree %d: %w", ci, err)
				return
			}
			p.Trees[ci] = t
			d.classNodes[ci] = nodes
			counts[ci] = len(nodes)
		}(ci, info)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	for _, n := range counts {
		total += n
	}
	if ix.FooterCount != uint64(total) {
		return nil, 0, fmt.Errorf("profio: footer: record count %d, decoded %d", ix.FooterCount, total)
	}
	telReadNodes.Add(uint64(total))

	// Trailers, sequentially: the temporal sidecar resolves node indices
	// against the freshly built class trees.
	for _, info := range ix.Trailers() {
		payload, err := readSectionAt(r, info, fmt.Sprintf("trailer %#x", info.Magic))
		if err != nil {
			return nil, 0, fmt.Errorf("profio: %w", err)
		}
		switch info.Magic {
		case TemporalMagic:
			if p.Temporal != nil {
				return nil, 0, fmt.Errorf("profio: duplicate temporal trailer section")
			}
			ts, err := decodeTimeSeries(payload, &d.classNodes)
			if err != nil {
				return nil, 0, fmt.Errorf("profio: temporal sidecar: %w", err)
			}
			p.Temporal = ts
			telTemporalRead.Inc()
		default:
			telTrailerSkipped.Inc()
		}
	}
	telReadProfiles.Inc()
	return p, total, nil
}

// ReadFileParallel is ReadProfileAt over a file path.
func ReadFileParallel(path string, in *Intern, parallel int) (*cct.Profile, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	return ReadProfileAt(f, st.Size(), in, parallel)
}
