package profio

import (
	"bytes"
	"io"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// TestIndexSectionsLayout: the index must describe exactly the framing the
// writer emitted — header, one tree per class in class order, trailers —
// with offsets/lengths that slice the image at the right bytes.
func TestIndexSectionsLayout(t *testing.T) {
	for name, enc := range map[string]func(io.Writer, *cct.Profile) error{
		"v2": WriteProfileV2,
		"v3": WriteProfile,
	} {
		t.Run(name, func(t *testing.T) {
			p := sampleProfile(3, 17)
			var buf bytes.Buffer
			if err := enc(&buf, p); err != nil {
				t.Fatal(err)
			}
			img := buf.Bytes()
			ix, err := IndexSections(bytes.NewReader(img), int64(len(img)))
			if err != nil {
				t.Fatal(err)
			}
			if want := map[string]uint32{"v2": Version2, "v3": Version}[name]; ix.Version != want {
				t.Errorf("version = %d, want %d", ix.Version, want)
			}
			if got := len(ix.Sections); got != 1+cct.NumClasses {
				t.Fatalf("%d sections, want %d", got, 1+cct.NumClasses)
			}
			if ix.Header().Kind != SectionHeader {
				t.Errorf("first section kind = %d, want header", ix.Header().Kind)
			}
			for i, s := range ix.Trees() {
				if s.Kind != SectionTree || s.Class != cct.Class(i) {
					t.Errorf("tree section %d = kind %d class %d", i, s.Kind, s.Class)
				}
			}
			if want := uint64(p.NumNodes()); ix.FooterCount != want {
				t.Errorf("footer count = %d, want %d", ix.FooterCount, want)
			}
			// Each indexed payload must verify against its recorded CRC.
			for i, s := range ix.Sections {
				if _, err := readSectionAt(bytes.NewReader(img), s, "test"); err != nil {
					t.Errorf("section %d does not read back: %v", i, err)
				}
			}
		})
	}
}

// TestIndexSectionsTrailer: a temporal sidecar shows up as a tagged
// trailer entry.
func TestIndexSectionsTrailer(t *testing.T) {
	p := sampleProfile(1, 2)
	var d cct.TimeDelta
	d.Class = cct.ClassStatic
	d.Node = p.Trees[cct.ClassStatic].Root
	d.Metrics[metric.Samples] = 1
	p.Temporal = &cct.TimeSeries{
		Width:   1 << 20,
		Windows: []cct.TimeWindow{{Index: 3, Deltas: []cct.TimeDelta{d}}},
	}
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	ix, err := IndexSections(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	tr := ix.Trailers()
	if len(tr) != 1 {
		t.Fatalf("%d trailers, want 1", len(tr))
	}
	if tr[0].Kind != SectionTrailer || tr[0].Magic != TemporalMagic {
		t.Errorf("trailer = kind %d magic %#x, want trailer/%#x", tr[0].Kind, tr[0].Magic, TemporalMagic)
	}
}

// TestIndexSectionsRejects: v1 (no framing), truncations, and footer
// damage must all fail indexing — never yield a bogus index.
func TestIndexSectionsRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfile(&buf, sampleProfile(3, 17)); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	v1 := encodeV1(t, sampleProfile(0, 0))
	if _, err := IndexSections(bytes.NewReader(v1), int64(len(v1))); err == nil {
		t.Error("v1 image indexed without error")
	}
	for cut := 0; cut < len(img); cut += 7 {
		if _, err := IndexSections(bytes.NewReader(img[:cut]), int64(cut)); err == nil {
			t.Errorf("truncation at %d indexed without error", cut)
		}
	}
	dmg := append([]byte{}, img...)
	dmg[len(dmg)-1] ^= 0x01 // footer CRC
	if _, err := IndexSections(bytes.NewReader(dmg), int64(len(dmg))); err == nil {
		t.Error("footer CRC damage indexed without error")
	}
}

// TestReadProfileAtParity: for both format versions, with and without a
// temporal sidecar, the parallel reader must produce a profile whose v3
// re-encode is byte-identical to the sequential reader's — same trees,
// same node order, same sidecar.
func TestReadProfileAtParity(t *testing.T) {
	base := sampleProfile(5, 9)
	var d cct.TimeDelta
	d.Class = cct.ClassStatic
	d.Node = base.Trees[cct.ClassStatic].Root
	d.Metrics[metric.Samples] = 2
	withTS := sampleProfile(5, 9)
	withTS.Temporal = &cct.TimeSeries{
		Width:   1 << 20,
		Windows: []cct.TimeWindow{{Index: 1, Deltas: []cct.TimeDelta{d}}},
	}
	// The sidecar references nodes of its own profile; rebuild the delta
	// against withTS's tree.
	withTS.Temporal.Windows[0].Deltas[0].Node = withTS.Trees[cct.ClassStatic].Root

	cases := map[string]*cct.Profile{"plain": base, "temporal": withTS}
	for name, p := range cases {
		for ver, enc := range map[string]func(io.Writer, *cct.Profile) error{
			"v2": WriteProfileV2,
			"v3": WriteProfile,
		} {
			t.Run(name+"/"+ver, func(t *testing.T) {
				var buf bytes.Buffer
				if err := enc(&buf, p); err != nil {
					t.Fatal(err)
				}
				img := buf.Bytes()
				seq, err := ReadProfile(bytes.NewReader(img))
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 4} {
					par, n, err := ReadProfileAt(bytes.NewReader(img), int64(len(img)), nil, workers)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if n != seq.NumNodes() {
						t.Errorf("workers=%d: decoded %d records, want %d", workers, n, seq.NumNodes())
					}
					profilesEqual(t, seq, par)
					var a, b bytes.Buffer
					if err := WriteProfile(&a, seq); err != nil {
						t.Fatal(err)
					}
					if err := WriteProfile(&b, par); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(a.Bytes(), b.Bytes()) {
						t.Errorf("workers=%d: parallel decode re-encodes differently", workers)
					}
					if p.Temporal != nil && par.Temporal == nil {
						t.Errorf("workers=%d: sidecar lost", workers)
					}
				}
			})
		}
	}
}

// TestReadProfileAtErrors: every corruption the sequential strict reader
// rejects must also fail the parallel path (so the fall-back to the
// sequential reader, not the parallel decode, decides degraded-mode
// behavior).
func TestReadProfileAtErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfile(&buf, sampleProfile(3, 17)); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for i := range img {
		dmg := append([]byte{}, img...)
		dmg[i] ^= 0x10
		_, seqErr := ReadProfile(bytes.NewReader(dmg))
		if seqErr == nil {
			continue // flip the strict reader tolerates (none today)
		}
		if _, _, err := ReadProfileAt(bytes.NewReader(dmg), int64(len(dmg)), nil, 4); err == nil {
			t.Fatalf("bit flip at byte %d: sequential rejects (%v), parallel accepted", i, seqErr)
		}
	}
	for cut := 0; cut < len(img); cut += 5 {
		if _, _, err := ReadProfileAt(bytes.NewReader(img[:cut]), int64(cut), nil, 4); err == nil {
			t.Fatalf("truncation at %d accepted by parallel reader", cut)
		}
	}
}

// TestReadFileParallel smoke-tests the path-based convenience wrapper.
func TestReadFileParallel(t *testing.T) {
	dir := t.TempDir()
	p := sampleProfile(2, 3)
	if _, err := WriteDir(dir, []*cct.Profile{p}); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadFileParallel(dir+"/"+FileName(2, 3), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	profilesEqual(t, p, got)
}
