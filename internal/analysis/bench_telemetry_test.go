package analysis

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
	"dcprof/internal/telemetry"
	"dcprof/internal/telemetry/spanlog"
)

// denseProfiles builds n thread profiles with realistically sized CCTs
// (hundreds of nodes each), so the gate measures telemetry against real
// decode/merge work rather than against fixture setup.
func denseProfiles(seed int64, n int) []*cct.Profile {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*cct.Profile, 0, n)
	for th := 0; th < n; th++ {
		p := cct.NewProfile(0, th, "IBS@4096")
		for i := 0; i < 400; i++ {
			var v metric.Vector
			v[metric.Samples] = uint64(rng.Intn(10) + 1)
			v[metric.Latency] = uint64(rng.Intn(1000))
			fn := fmt.Sprintf("f%d", rng.Intn(40))
			path := []cct.Frame{
				{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
				{Kind: cct.KindCall, Module: "exe", Name: fn, File: fn + ".c"},
				{Kind: cct.KindStmt, Module: "exe", Name: fn, File: fn + ".c", Line: rng.Intn(40)},
			}
			p.Trees[cct.Class(rng.Intn(cct.NumClasses))].AddSample(path, &v)
		}
		out = append(out, p)
	}
	return out
}

// TestTelemetryOverheadGate measures streaming-merge wall time with
// telemetry off (no caller registry or span log) and on (both attached),
// writes the comparison as JSON, and fails if instrumentation costs more
// than the gate allows. Opt-in via DCPROF_BENCH_TELEMETRY=<output file>
// (check.sh sets it): wall-clock gates are too noisy for the default
// `go test ./...` tier.
func TestTelemetryOverheadGate(t *testing.T) {
	out := os.Getenv("DCPROF_BENCH_TELEMETRY")
	if out == "" {
		t.Skip("set DCPROF_BENCH_TELEMETRY=<output file> to run the telemetry overhead gate")
	}

	const gate = 1.05 // telemetry on must stay within 5% of off

	ps := denseProfiles(11, 128) // realistic per-file tree sizes
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}

	// Best-of-N: the minimum is the least-noise estimate of the true cost
	// of each configuration on this machine.
	const rounds = 7
	measure := func(instrumented bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			opt := LoadOptions{Workers: 4}
			if instrumented {
				opt.Telemetry = telemetry.New()
				opt.Spans = spanlog.New()
			}
			t0 := time.Now()
			if _, _, err := LoadDirStreamingCtx(context.Background(), dir, opt); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}

	// Interleave a warmup of each before timing, so page cache and JIT-ish
	// effects (map growth, GC steady state) hit both configurations.
	measure(false)
	measure(true)
	off := measure(false)
	on := measure(true)
	ratio := float64(on) / float64(off)

	rep := struct {
		OffNS     int64   `json:"telemetry_off_ns"`
		OnNS      int64   `json:"telemetry_on_ns"`
		Ratio     float64 `json:"ratio"`
		Gate      float64 `json:"gate"`
		Pass      bool    `json:"pass"`
		Inputs    int     `json:"inputs"`
		BestOf    int     `json:"best_of"`
		Timestamp string  `json:"timestamp"`
	}{
		OffNS: off.Nanoseconds(), OnNS: on.Nanoseconds(),
		Ratio: ratio, Gate: gate, Pass: ratio <= gate,
		Inputs: len(ps), BestOf: rounds,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("telemetry off %v, on %v, ratio %.3f (gate %.2f), report %s", off, on, ratio, gate, out)
	if ratio > gate {
		t.Errorf("telemetry-on merge is %.1f%% slower than off (gate %.0f%%)", 100*(ratio-1), 100*(gate-1))
	}
}
