package analysis

// JSON export: hpcviewer consumes HPCToolkit's XML database; our text views
// play that role, and this export gives external tooling (scripts,
// notebooks, web viewers) the same merged database in a stable JSON shape.

import (
	"encoding/json"
	"io"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// JSONNode is one CCT node in the export.
type JSONNode struct {
	// Kind is the frame kind ("call", "stmt", "static-var", ...).
	Kind string `json:"kind"`
	// Name, Module, File, Line identify the frame (omitted when empty).
	Name   string `json:"name,omitempty"`
	Module string `json:"module,omitempty"`
	File   string `json:"file,omitempty"`
	Line   int    `json:"line,omitempty"`
	// Metrics holds the node's non-zero exclusive metrics by name.
	Metrics map[string]uint64 `json:"metrics,omitempty"`
	// Children are the node's children in deterministic order.
	Children []*JSONNode `json:"children,omitempty"`
}

// JSONDatabase is the top-level export document.
type JSONDatabase struct {
	// Event is the monitored-event description.
	Event string `json:"event"`
	// Ranks and Threads count the merged sources.
	Ranks   int `json:"ranks"`
	Threads int `json:"threads"`
	// Classes maps storage-class names to their CCT roots.
	Classes map[string]*JSONNode `json:"classes"`
}

// ToJSON converts a database to its export form.
func ToJSON(db *Database) *JSONDatabase {
	out := &JSONDatabase{
		Event:   db.Event,
		Ranks:   db.Ranks,
		Threads: db.Threads,
		Classes: map[string]*JSONNode{},
	}
	for c, tree := range db.Merged.Trees {
		out.Classes[cct.Class(c).String()] = convertNode(tree.Root)
	}
	return out
}

func convertNode(n *cct.Node) *JSONNode {
	j := &JSONNode{
		Kind:   n.Frame.Kind.String(),
		Name:   n.Frame.Name,
		Module: n.Frame.Module,
		File:   n.Frame.File,
		Line:   n.Frame.Line,
	}
	for i, v := range n.Metrics {
		if v != 0 {
			if j.Metrics == nil {
				j.Metrics = map[string]uint64{}
			}
			j.Metrics[metric.ID(i).Name()] = v
		}
	}
	for _, c := range n.Children() {
		j.Children = append(j.Children, convertNode(c))
	}
	return j
}

// WriteJSON streams the database as indented JSON.
func WriteJSON(w io.Writer, db *Database) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSON(db))
}
