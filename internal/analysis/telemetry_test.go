package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"dcprof/internal/faultio"
	"dcprof/internal/profio"
	"dcprof/internal/telemetry"
	"dcprof/internal/telemetry/spanlog"
)

// TestLoadTelemetryAbsorbed: a load with LoadOptions.Telemetry set must
// publish its private accounting into the caller's registry, and the
// published counters must agree with the MergeStats view returned
// alongside the database.
func TestLoadTelemetryAbsorbed(t *testing.T) {
	ps := randomProfiles(7, 2, 8) // 16 profiles
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	db, st, err := LoadDirStreamingCtx(context.Background(), dir, LoadOptions{Workers: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if db == nil {
		t.Fatal("nil database")
	}

	s := reg.Snapshot()
	if got := s.Counters[instFilesDiscovered]; got != 16 {
		t.Errorf("%s = %d, want 16", instFilesDiscovered, got)
	}
	if got := s.Counters[instProfilesMerged]; int(got) != st.Inputs {
		t.Errorf("%s = %d, stats say %d", instProfilesMerged, got, st.Inputs)
	}
	if got := s.Counters[instNodesInput]; int(got) != st.InputNodes {
		t.Errorf("%s = %d, stats say %d", instNodesInput, got, st.InputNodes)
	}
	if got := s.Counters[instBytesRead]; int64(got) != st.BytesRead {
		t.Errorf("%s = %d, stats say %d", instBytesRead, got, st.BytesRead)
	}
	if got := s.Gauges[instNodesMerged].Value; int(got) != st.MergedNodes {
		t.Errorf("%s = %d, stats say %d", instNodesMerged, got, st.MergedNodes)
	}
	if got := s.Gauges[instResidency].Max; int(got) != st.MaxResident {
		t.Errorf("%s max = %d, stats say %d", instResidency, got, st.MaxResident)
	}
	if got := s.Gauges[instResidency].Value; got != 0 {
		t.Errorf("%s = %d after load, want 0 (all items folded)", instResidency, got)
	}
	if s.Counters[instQuarFiles] != 0 {
		t.Errorf("quarantine counter %d on a clean load", s.Counters[instQuarFiles])
	}
}

// TestLoadTelemetryQuarantine: a quarantining load must count the
// quarantined file in the registry.
func TestLoadTelemetryQuarantine(t *testing.T) {
	ps := randomProfiles(9, 1, 4)
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	if err := faultio.Truncate(filepath.Join(dir, profio.FileName(0, 1)), 40); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	_, st, err := LoadDirStreamingCtx(context.Background(), dir, LoadOptions{
		Workers: 2, Policy: PolicyQuarantine, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters[instQuarFiles]; int(got) != len(st.Quarantined) || got == 0 {
		t.Errorf("%s = %d, stats quarantined %d files", instQuarFiles, got, len(st.Quarantined))
	}
}

// TestLoadSpans: a load with a span log attached must record the
// load/decode/fold/reduce/pipeline stages as a valid trace-event document.
func TestLoadSpans(t *testing.T) {
	ps := randomProfiles(5, 1, 6)
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}

	spans := spanlog.New()
	if _, _, err := LoadDirStreamingCtx(context.Background(), dir, LoadOptions{Workers: 2, Spans: spans}); err != nil {
		t.Fatal(err)
	}

	want := map[string]bool{"load": false, "decode": false, "fold": false, "merge pipeline": false}
	for _, ev := range spans.Events() {
		for prefix := range want {
			if len(ev.Name) >= len(prefix) && ev.Name[:len(prefix)] == prefix {
				want[prefix] = true
			}
		}
	}
	for prefix, seen := range want {
		if !seen {
			t.Errorf("no span named %q* recorded", prefix)
		}
	}

	var buf bytes.Buffer
	if err := spans.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace document is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != spans.Len() {
		t.Errorf("document has %d events, log has %d", len(doc.TraceEvents), spans.Len())
	}
}
