// Temporal queries over a merged database: window-restricted profiles,
// window-to-window comparison, and detected execution phases. All of them
// answer from Database.Temporal, the index built from the per-thread
// time-series sidecars during the merge — the cumulative Merged profile is
// never consulted, so a clipped view shows exactly what happened inside
// the requested time range even when the whole-run ranking says otherwise.
package analysis

import (
	"errors"
	"fmt"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/telemetry/spanlog"
	"dcprof/internal/temporal"
)

// ErrNoTemporal reports a temporal query against a measurement whose
// profiles carried no time-series sidecars (temporal profiling disabled,
// or files written before the sidecar existed).
var ErrNoTemporal = errors.New("analysis: measurement has no temporal data")

// temporalIndex returns the database's temporal index or ErrNoTemporal.
func temporalIndex(db *Database) (*temporal.Index, error) {
	if db == nil || db.Temporal == nil || db.Temporal.NumWindows() == 0 {
		return nil, ErrNoTemporal
	}
	return db.Temporal, nil
}

// Clip reconstitutes the merged profile restricted to the sim-cycle range
// [t0, t1). Every window overlapping the range contributes whole — window
// width is the resolution floor. The result is freshly built and aliases
// nothing in the database.
func Clip(db *Database, t0, t1 uint64) (*cct.Profile, error) {
	ix, err := temporalIndex(db)
	if err != nil {
		return nil, err
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("analysis: empty clip range [%d, %d)", t0, t1)
	}
	return ix.Clip(t0, t1), nil
}

// WindowDiff is the result of comparing two time windows of one
// measurement: both window-restricted profiles plus their aggregate metric
// totals, ready for side-by-side presentation.
type WindowDiff struct {
	W1, W2 uint64 // window indices
	Width  uint64 // window width in sim cycles
	P1, P2 *cct.Profile
	T1, T2 metric.Vector
}

// Diff reconstitutes the two windows' profiles for comparison. Either
// window may be empty (no samples landed there); out-of-range indices are
// allowed and yield empty profiles, so diffing against an idle window
// works.
func Diff(db *Database, w1, w2 uint64) (*WindowDiff, error) {
	ix, err := temporalIndex(db)
	if err != nil {
		return nil, err
	}
	return &WindowDiff{
		W1: w1, W2: w2, Width: ix.Width(),
		P1: ix.WindowProfile(w1), P2: ix.WindowProfile(w2),
		T1: ix.WindowTotal(w1), T2: ix.WindowTotal(w2),
	}, nil
}

// Phases runs change-point detection over the measurement's window
// aggregates and returns the labeled execution phases, tiling the sampled
// span.
func Phases(db *Database) ([]temporal.Phase, error) {
	ix, err := temporalIndex(db)
	if err != nil {
		return nil, err
	}
	return ix.Phases(), nil
}

// emitPhaseSpans adds the detected phases to a pipeline trace as spans on
// their own row, one simulated cycle mapped to one microsecond, so the
// program's phase structure lines up with the analyzer's own timeline in
// any trace viewer. No-op when tracing is off or the measurement has no
// temporal data.
func emitPhaseSpans(spans *spanlog.Log, ix *temporal.Index) {
	if spans == nil || ix == nil {
		return
	}
	for _, ph := range ix.Phases() {
		spans.Range("phase "+ph.Label, "phases", 0, phaseTid,
			int64(ph.Start), int64(ph.End-ph.Start),
			map[string]any{
				"label":        ph.Label,
				"start_cycle":  ph.Start,
				"end_cycle":    ph.End,
				"start_window": ph.StartWindow,
				"end_window":   ph.EndWindow,
				"samples":      ph.Samples,
			})
	}
}

// phaseTid places phase spans on their own trace row, past the decode
// workers and fold rows.
const phaseTid = 200
