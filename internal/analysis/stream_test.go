package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/profio"
)

// canonicalProfile renders a profile deterministically (sorted pre-order
// walk of every class tree with frames and metric vectors), so two merge
// results can be compared byte-for-byte regardless of merge order.
func canonicalProfile(p *cct.Profile) string {
	var b strings.Builder
	for c, tree := range p.Trees {
		tree.Walk(func(n *cct.Node, depth int) bool {
			fmt.Fprintf(&b, "%d/%d %+v %v\n", c, depth, n.Frame, n.Metrics)
			return true
		})
	}
	return b.String()
}

// cloneProfiles deep-copies profiles so consuming merges can run on them.
func cloneProfiles(ps []*cct.Profile) []*cct.Profile {
	out := make([]*cct.Profile, len(ps))
	for i, p := range ps {
		c := cct.NewProfile(p.Rank, p.Thread, p.Event)
		c.Merge(p)
		out[i] = c
	}
	return out
}

func TestLoadDirStreamingMatchesBatch(t *testing.T) {
	const workers = 4
	ps := randomProfiles(42, 2, 64) // 128 thread profiles
	want := MergePreserving(ps, 0)

	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	db, st, err := LoadDirStreaming(dir, workers)
	if err != nil {
		t.Fatal(err)
	}

	if got, wantC := canonicalProfile(db.Merged), canonicalProfile(want.Merged); got != wantC {
		t.Error("streaming merge result differs from batch merge")
	}
	if db.Ranks != want.Ranks || db.Threads != want.Threads || db.Event != want.Event {
		t.Errorf("header: got %d/%d/%q, want %d/%d/%q",
			db.Ranks, db.Threads, db.Event, want.Ranks, want.Threads, want.Event)
	}

	// The bounded-residency guarantee: at most ~2×workers decoded profiles
	// in flight, never all 128.
	if st.MaxResident == 0 || st.MaxResident > 2*workers+2 {
		t.Errorf("peak residency = %d, want 1..%d (bounded by ~2x workers)", st.MaxResident, 2*workers+2)
	}
	if st.Inputs != 128 {
		t.Errorf("stats inputs = %d", st.Inputs)
	}
	if st.BytesRead <= 0 || db.MeasurementBytes != st.BytesRead {
		t.Errorf("bytes read = %d, db bytes = %d", st.BytesRead, db.MeasurementBytes)
	}
	if st.InputNodes == 0 || st.MergedNodes == 0 || st.InputNodes < st.MergedNodes {
		t.Errorf("node counts: input %d, merged %d", st.InputNodes, st.MergedNodes)
	}
	if st.CoalescingFactor() <= 1 {
		t.Errorf("coalescing factor = %.2f, want > 1 for 128 near-identical threads", st.CoalescingFactor())
	}
	if st.DecodeWall <= 0 || st.MergeWall < st.DecodeWall {
		t.Errorf("stage walls: decode %s, merge %s", st.DecodeWall, st.MergeWall)
	}
	if st.Workers != workers {
		t.Errorf("workers = %d", st.Workers)
	}
}

func TestLoadDirStreamingSingleWorker(t *testing.T) {
	ps := randomProfiles(3, 1, 5)
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	want := MergePreserving(ps, 1)
	db, _, err := LoadDirStreaming(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalProfile(db.Merged) != canonicalProfile(want.Merged) {
		t.Error("1-worker streaming merge differs from batch merge")
	}
}

func TestLoadDirStreamingCorruptFile(t *testing.T) {
	ps := randomProfiles(8, 1, 4)
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, profio.FileName(0, 2))
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadDirStreaming(dir, 2)
	if err == nil {
		t.Fatal("corrupt file accepted")
	}
	if !strings.Contains(err.Error(), filepath.Base(bad)) {
		t.Errorf("error %q does not name the corrupt file", err)
	}
}

func TestMergeStream(t *testing.T) {
	ps := randomProfiles(17, 2, 8)
	want := MergePreserving(ps, 0)

	ch := make(chan *cct.Profile)
	go func() {
		for _, p := range cloneProfiles(ps) {
			ch <- p
		}
		close(ch)
	}()
	db, st := MergeStream(ch, 4)
	if canonicalProfile(db.Merged) != canonicalProfile(want.Merged) {
		t.Error("MergeStream result differs from batch merge")
	}
	if st.Inputs != 16 || st.InputNodes == 0 {
		t.Errorf("stats: %+v", st)
	}
}

// MergePreserving must leave its inputs untouched, so merging the same
// profiles twice (experiment drivers share memoized runs) cannot
// double-count metrics.
func TestMergePreservingDoubleMerge(t *testing.T) {
	ps := randomProfiles(23, 2, 6)
	wantTotal := totals(ps)
	before := make([]string, len(ps))
	for i, p := range ps {
		before[i] = canonicalProfile(p)
	}

	db1 := MergePreserving(ps, 3)
	db2 := MergePreserving(ps, 3)

	for i, p := range ps {
		if canonicalProfile(p) != before[i] {
			t.Fatalf("MergePreserving mutated input %d", i)
		}
	}
	if got := db1.Merged.Total(); got != wantTotal {
		t.Errorf("first merge total %v, want %v", got, wantTotal)
	}
	if got := db2.Merged.Total(); got != wantTotal {
		t.Errorf("second merge total %v, want %v (double-counted?)", got, wantTotal)
	}
	if canonicalProfile(db1.Merged) != canonicalProfile(db2.Merged) {
		t.Error("repeated preserving merges disagree")
	}
}

// Merge, by contrast, consumes its inputs (documented behavior): after a
// merge the inputs' combined totals exceed the true total, so re-merging
// them must NOT be done. This test locks in the contract that motivates
// MergePreserving.
func TestMergeConsumesInputs(t *testing.T) {
	ps := randomProfiles(29, 1, 8)
	wantTotal := totals(ps)
	db := Merge(ps, 2)
	if got := db.Merged.Total(); got != wantTotal {
		t.Fatalf("merge total %v, want %v", got, wantTotal)
	}
	if after := totals(ps); after == wantTotal {
		t.Skip("inputs happened to be untouched; consumption is an optimization, not a guarantee")
	}
}

func BenchmarkLoadDirStreaming128(b *testing.B) {
	ps := randomProfiles(42, 1, 128)
	dir := filepath.Join(b.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := LoadDirStreaming(dir, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergePreserving128Threads(b *testing.B) {
	ps := randomProfiles(42, 1, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergePreserving(ps, 8)
	}
}
