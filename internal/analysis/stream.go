// Streaming ingestion and merge: the pipelined analogue of the paper's
// MPI reduction tree. Profiles are decoded by a bounded worker pool,
// split into their storage-class trees, and folded into per-class
// accumulators as they arrive — there is no barrier between decoding and
// merging, and at no point are more than ~2×workers decoded profiles
// resident, which is what lets the analyzer ingest thousand-thread
// measurements without holding the whole measurement in memory first.

package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dcprof/internal/cct"
	"dcprof/internal/profio"
)

// streamItem is one decoded profile entering the merge pipeline.
type streamItem struct {
	p     *cct.Profile
	bytes int64 // on-disk size (0 when merged from memory)
	nodes int   // CCT nodes decoded (0 when unknown)
}

// residency tracks how many decoded profiles are simultaneously alive in
// the pipeline — the bounded-memory guarantee the streaming path exists
// to provide.
type residency struct {
	mu       sync.Mutex
	cur, max int
}

func (r *residency) inc() {
	r.mu.Lock()
	r.cur++
	if r.cur > r.max {
		r.max = r.cur
	}
	r.mu.Unlock()
}

func (r *residency) dec() {
	r.mu.Lock()
	r.cur--
	r.mu.Unlock()
}

// mergeItems is the channel-fed reduction engine behind Merge,
// MergePreserving, MergeStream, and LoadDirStreaming.
//
// Each arriving profile is split into its storage-class trees, which are
// fanned out to per-class folder goroutines; every folder owns one
// accumulator tree and folds incoming trees into it immediately. When the
// input drains, the few per-class accumulators are reduced pairwise — the
// only step with a barrier, over O(workers) trees instead of O(inputs).
//
// With preserve=false the first tree a folder receives becomes its
// accumulator (the input profile is consumed); with preserve=true folders
// start from fresh empty trees and the inputs are never mutated.
func mergeItems(items <-chan streamItem, workers int, preserve bool, res *residency) (*Database, MergeStats) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	st := MergeStats{Workers: workers}

	type classItem struct {
		tree *cct.Tree
		rem  *int32 // trees of the owning profile not yet folded
	}
	var chans [cct.NumClasses]chan classItem
	for c := range chans {
		chans[c] = make(chan classItem, 1)
	}

	perClass := (workers + cct.NumClasses - 1) / cct.NumClasses
	accs := make([][]*cct.Tree, cct.NumClasses)
	var fwg sync.WaitGroup
	for c := 0; c < cct.NumClasses; c++ {
		accs[c] = make([]*cct.Tree, perClass)
		for k := 0; k < perClass; k++ {
			fwg.Add(1)
			go func(c, k int) {
				defer fwg.Done()
				var acc *cct.Tree
				if preserve {
					acc = cct.New()
				}
				for it := range chans[c] {
					if acc == nil {
						acc = it.tree
					} else {
						acc.Root.MergeFrom(it.tree.Root)
					}
					if atomic.AddInt32(it.rem, -1) == 0 && res != nil {
						res.dec()
					}
				}
				if acc == nil {
					acc = cct.New()
				}
				accs[c][k] = acc
			}(c, k)
		}
	}

	// Split stage: runs inline, recording identity while fanning trees out.
	var (
		ranks        = map[int]bool{}
		n            int
		bestRank     int
		bestThread   int
		bestEvent    string
		have         bool
		lastItemSeen time.Time
	)
	for it := range items {
		n++
		st.InputNodes += it.nodes
		st.BytesRead += it.bytes
		ranks[it.p.Rank] = true
		if !have || it.p.Rank < bestRank || (it.p.Rank == bestRank && it.p.Thread < bestThread) {
			bestRank, bestThread, bestEvent = it.p.Rank, it.p.Thread, it.p.Event
			have = true
		}
		rem := int32(cct.NumClasses)
		for c, tr := range it.p.Trees {
			chans[c] <- classItem{tr, &rem}
		}
		lastItemSeen = time.Now()
	}
	if have {
		st.DecodeWall = lastItemSeen.Sub(start)
	}
	for c := range chans {
		close(chans[c])
	}
	fwg.Wait()

	merged := cct.NewProfile(bestRank, bestThread, bestEvent)
	for c := 0; c < cct.NumClasses; c++ {
		acc := accs[c][0]
		for k := 1; k < perClass; k++ {
			acc.Merge(accs[c][k])
		}
		merged.Trees[c] = acc
	}
	st.MergeWall = time.Since(start)
	st.Inputs = n
	st.MergedNodes = merged.NumNodes()
	return &Database{Merged: merged, Ranks: len(ranks), Threads: n, Event: bestEvent}, st
}

// mergeSlice feeds an in-memory profile slice through the engine.
func mergeSlice(profiles []*cct.Profile, workers int, preserve bool) (*Database, MergeStats) {
	items := make(chan streamItem, 1)
	go func() {
		for _, p := range profiles {
			items <- streamItem{p: p}
		}
		close(items)
	}()
	return mergeItems(items, workers, preserve, nil)
}

// MergeStream merges profiles as they arrive on ch, with the same bounded
// fan-out as Merge. Like Merge it consumes its inputs: some arriving
// profiles are adopted as accumulators and mutated.
func MergeStream(ch <-chan *cct.Profile, workers int) (*Database, MergeStats) {
	items := make(chan streamItem, 1)
	go func() {
		for p := range ch {
			items <- streamItem{p: p, nodes: p.NumNodes()}
		}
		close(items)
	}()
	return mergeItems(items, workers, false, nil)
}

// LoadDirStreaming reads a measurement directory written by profio.WriteDir
// through the streaming pipeline: `workers` decoders read files
// incrementally (sharing one string-interning cache) and feed the merge
// stage as each profile completes. At most about 2×workers decoded
// profiles are ever resident — MergeStats.MaxResident records the observed
// peak — so directory size does not bound memory.
func LoadDirStreaming(dir string, workers int) (*Database, MergeStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	files, err := profio.Files(dir)
	if err != nil {
		return nil, MergeStats{}, fmt.Errorf("analysis: %w", err)
	}
	if len(files) == 0 {
		return nil, MergeStats{}, fmt.Errorf("analysis: no profiles in %s", dir)
	}

	var (
		res    = &residency{}
		intern = profio.NewIntern()
		items  = make(chan streamItem)
		paths  = make(chan string)
		errMu  sync.Mutex
		first  error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return first != nil
	}

	var dwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			for path := range paths {
				if failed() {
					continue
				}
				p, size, nodes, err := decodeFile(path, intern)
				if err != nil {
					fail(fmt.Errorf("analysis: %s: %w", filepath.Base(path), err))
					continue
				}
				res.inc()
				items <- streamItem{p: p, bytes: size, nodes: nodes}
			}
		}()
	}
	go func() {
		for _, f := range files {
			paths <- f
		}
		close(paths)
	}()
	go func() {
		dwg.Wait()
		close(items)
	}()

	db, st := mergeItems(items, workers, false, res)
	if failed() {
		errMu.Lock()
		defer errMu.Unlock()
		return nil, st, first
	}
	st.MaxResident = res.max
	db.MeasurementBytes = st.BytesRead
	return db, st, nil
}

func decodeFile(path string, in *profio.Intern) (*cct.Profile, int64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, 0, err
	}
	d, err := profio.NewReaderInterned(f, in)
	if err != nil {
		return nil, 0, 0, err
	}
	p, err := d.ReadRest()
	if err != nil {
		return nil, 0, 0, err
	}
	return p, fi.Size(), d.NodesRead(), nil
}
