// Streaming ingestion and merge: the pipelined analogue of the paper's
// MPI reduction tree. Profiles are decoded by a bounded worker pool,
// split into their storage-class trees, and folded into per-class
// accumulators as they arrive — there is no barrier between decoding and
// merging, and at no point are more than ~2×workers decoded profiles
// resident, which is what lets the analyzer ingest thousand-thread
// measurements without holding the whole measurement in memory first.
//
// The pipeline is also the system's fault boundary. At the scale the
// paper targets (one file per thread per rank) killed ranks, full
// filesystems, and torn writes are routine, so ingestion supports three
// error policies: fail fast (PolicyStrict), skip-and-report
// (PolicyQuarantine), and partial recovery of the intact class trees of
// damaged files (PolicySalvage). A context cancels the whole pipeline
// promptly, and a panic in a decode or fold worker becomes a per-file
// quarantine record instead of a crashed analyzer.

package analysis

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
	"dcprof/internal/telemetry"
	"dcprof/internal/telemetry/spanlog"
	"dcprof/internal/temporal"
)

// ErrorPolicy selects how ingestion reacts to unreadable profile files.
type ErrorPolicy int

const (
	// PolicyStrict aborts the merge on the first unreadable file — the
	// right default when a measurement is expected to be complete.
	PolicyStrict ErrorPolicy = iota
	// PolicyQuarantine skips unreadable files entirely, records each one
	// in MergeStats.Quarantined (path, reason, salvageable-tree count),
	// and merges the rest. The result is exactly the merge of the intact
	// files.
	PolicyQuarantine
	// PolicySalvage is PolicyQuarantine plus partial recovery: complete,
	// checksum-valid class trees recovered from damaged files are folded
	// into the merge as well. Damaged files still appear in Quarantined.
	PolicySalvage
)

// String names the policy as the dcview flags spell it.
func (p ErrorPolicy) String() string {
	switch p {
	case PolicyStrict:
		return "strict"
	case PolicyQuarantine:
		return "quarantine"
	case PolicySalvage:
		return "salvage"
	default:
		return fmt.Sprintf("ErrorPolicy(%d)", int(p))
	}
}

// LoadOptions configures LoadDirStreamingCtx.
type LoadOptions struct {
	// Workers is the decode/fold concurrency (<= 0 uses GOMAXPROCS).
	Workers int
	// Shards is the number of fold shards per storage class (<= 0 derives
	// from Workers). Each profile's root subtrees are partitioned across
	// shards by frame-ID hash, so no two shard accumulators ever share a
	// node — folds proceed shared-nothing and the final reduce adopts
	// pointers instead of copying trees. The merged result is
	// byte-identical for every shard count.
	Shards int
	// SectionParallel, when > 1, decodes each profile file's class-tree
	// sections concurrently (profio.ReadProfileAt) with up to this many
	// goroutines per file. The fast path requires an intact file and a
	// random-access handle; anything else falls back to the sequential
	// reader, whose error semantics (strict/quarantine/salvage) are
	// authoritative.
	SectionParallel int
	// Policy selects strict, quarantine, or salvage error handling.
	Policy ErrorPolicy
	// Open overrides how profile files are opened (nil uses os.Open) —
	// the seam the fault-injection test suite hooks to script read
	// errors, slow media, and decoder panics.
	Open func(path string) (io.ReadCloser, error)
	// Telemetry, when non-nil, receives the load's instrument totals
	// (names under "analysis.") absorbed once at completion. The pipeline
	// itself always accounts into a private per-load registry — the same
	// registry MergeStats is a view over — so sharing a process-wide
	// registry here never skews a later load's statistics.
	Telemetry *telemetry.Registry
	// Spans, when non-nil, receives Chrome trace-event spans for every
	// pipeline stage: one span per file decode (per worker row), one per
	// class folder, and the whole-merge span, plus instant markers for
	// quarantine decisions.
	Spans *spanlog.Log
}

// streamItem is one decoded profile entering the merge pipeline.
type streamItem struct {
	p     *cct.Profile
	path  string // source file ("" when merged from memory)
	bytes int64  // on-disk size (0 when merged from memory)
	nodes int    // CCT nodes decoded (0 when unknown)
}

// shardItem is one profile's contribution to one (class, shard) fold: the
// root subtrees whose frame IDs hash to the shard, plus — on shard 0 only
// — the tree root's own metrics.
type shardItem struct {
	roots       []*cct.Node
	rootMetrics metric.Vector
	path        string // source file, for fault attribution
	rem         *int32 // shard items of the owning profile not yet folded
}

// Instrument names the merge pipeline accounts under. Decoded-profile
// residency (the bounded-memory guarantee the streaming path exists to
// provide) and fold-queue depth are gauges with tracked maxima; the rest
// are counters. MergeStats is a view over these — there is no second
// bookkeeping path.
const (
	instProfilesMerged  = "analysis.profiles.merged"
	instNodesInput      = "analysis.nodes.input"
	instNodesMerged     = "analysis.nodes.merged"
	instBytesRead       = "analysis.bytes.read"
	instResidency       = "analysis.pipeline.residency"
	instFoldQueue       = "analysis.pipeline.fold_queue"
	instFoldPanics      = "analysis.fold.panics"
	instQuarFiles       = "analysis.quarantine.files"
	instQuarSalvaged    = "analysis.quarantine.salvaged_trees"
	instFilesDiscovered = "analysis.files.discovered"
	instDecodeLatencyUS = "analysis.decode.file_latency_us"
	instDecodeWallUS    = "analysis.wall.decode_us"
	instMergeWallUS     = "analysis.wall.merge_us"
	instFoldWallUS      = "analysis.wall.fold_us"
	instReduceWallUS    = "analysis.wall.reduce_us"
	instShards          = "analysis.pipeline.shards"
	instTemporalSeries  = "analysis.temporal.series"
	instTemporalDropped = "analysis.temporal.dropped"
)

// quarantineLog accumulates per-file failure records across the decode and
// fold workers. Entries are deduplicated by path (several trees of one
// file can fail independently) and reported sorted for determinism.
type quarantineLog struct {
	mu     sync.Mutex
	byPath map[string]*QuarantinedFile
}

func newQuarantineLog() *quarantineLog {
	return &quarantineLog{byPath: map[string]*QuarantinedFile{}}
}

func (q *quarantineLog) add(path, reason string, salvaged int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if rec, ok := q.byPath[path]; ok {
		rec.Reason += "; " + reason
		return
	}
	q.byPath[path] = &QuarantinedFile{Path: path, Reason: reason, SalvagedTrees: salvaged}
}

func (q *quarantineLog) sorted() []QuarantinedFile {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QuarantinedFile, 0, len(q.byPath))
	for _, rec := range q.byPath {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// shardOf maps a root subtree's frame ID to its fold shard (Fibonacci
// hashing: multiplicative spread of sequentially assigned interner IDs).
func shardOf(id cct.FrameID, shards int) int {
	return int((uint64(id) * 0x9e3779b97f4a7c15 >> 32) % uint64(shards))
}

// defaultShards sizes the per-class shard count so the folder goroutine
// total tracks the requested worker count, as the unsharded engine's did.
func defaultShards(workers int) int {
	return (workers + cct.NumClasses - 1) / cct.NumClasses
}

// EffectiveWorkers resolves the decode/fold concurrency this option set
// would actually run with — the number observability surfaces report.
func (o LoadOptions) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// EffectiveShards resolves the per-class fold shard count this option set
// would actually run with.
func (o LoadOptions) EffectiveShards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return defaultShards(o.EffectiveWorkers())
}

// mergeItems is the channel-fed reduction engine behind Merge,
// MergePreserving, MergeStream, and LoadDirStreaming.
//
// Each arriving profile is split twice: by storage class, then by a hash
// of each root subtree's frame ID into one of `shards` fold shards. Every
// (class, shard) pair owns a private accumulator tree and a dedicated
// folder goroutine, and because the hash partitions root subtrees the
// accumulators are shared-nothing — no node is ever reachable from two
// shards, so folds run without locks and without false sharing. When the
// input drains, each class's shard accumulators are reduced pairwise in
// parallel rounds; disjointness makes every reduce step pointer adoption
// (cct.Tree.Absorb), not a tree walk, so the only barrier in the pipeline
// costs O(shards) pointer moves. The result is byte-identical under every
// shard count — a property test holds the encoder to that.
//
// With preserve=false incoming subtrees are adopted into the accumulators
// (the input profiles are consumed); with preserve=true they are copied
// in and the inputs are never mutated.
//
// When ctx is cancelled the split stage stops folding and drains the
// remaining items so upstream decoders unblock. When quar is non-nil a
// panic while folding one shard item is recovered into a quarantine
// record for the item's source file instead of crashing the process (nil
// — the in-memory merge paths — preserves the old panic-through
// behavior).
//
// reg is the per-merge telemetry registry every stage accounts into and
// the returned MergeStats is a view over; callers create a fresh one per
// merge. res is the decoded-profile residency gauge (nil for in-memory
// merges, where the caller already owns every profile); spans, when
// non-nil, receives per-stage trace events.
func mergeItems(ctx context.Context, items <-chan streamItem, workers, shards int, preserve bool, reg *telemetry.Registry, res *telemetry.Gauge, quar *quarantineLog, spans *spanlog.Log) (*Database, MergeStats) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if shards <= 0 {
		shards = defaultShards(workers)
	}
	start := time.Now()
	var (
		inputs     = reg.Counter(instProfilesMerged)
		inputNodes = reg.Counter(instNodesInput)
		bytesRead  = reg.Counter(instBytesRead)
		foldQueue  = reg.Gauge(instFoldQueue)
		foldPanics = reg.Counter(instFoldPanics)
	)
	reg.Gauge(instShards).Set(int64(shards))

	chans := make([][]chan shardItem, cct.NumClasses)
	for c := range chans {
		chans[c] = make([]chan shardItem, shards)
		for k := range chans[c] {
			chans[c][k] = make(chan shardItem, 1)
		}
	}

	accs := make([][]*cct.Tree, cct.NumClasses)
	var fwg sync.WaitGroup
	for c := 0; c < cct.NumClasses; c++ {
		accs[c] = make([]*cct.Tree, shards)
		for k := 0; k < shards; k++ {
			fwg.Add(1)
			go func(c, k int) {
				defer fwg.Done()
				defer spans.Span(fmt.Sprintf("fold %s[%d]", cct.Class(c), k), "merge",
					0, foldTidBase+c*shards+k, nil)()
				acc := cct.New()
				for it := range chans[c][k] {
					foldQueue.Add(-1)
					if quar == nil {
						foldShard(acc, it, preserve)
					} else {
						foldShardRecovering(acc, it, preserve, cct.Class(c), quar, foldPanics)
					}
					if atomic.AddInt32(it.rem, -1) == 0 {
						res.Add(-1)
					}
				}
				accs[c][k] = acc
			}(c, k)
		}
	}

	// Split stage: runs inline, recording identity while fanning subtrees
	// out to their shards.
	var (
		ranks        = map[int]bool{}
		bestRank     int
		bestThread   int
		bestEvent    string
		have         bool
		lastItemSeen time.Time
		cancelled    bool
		tix          = temporal.NewIndex()
		buckets      = make([]*shardItem, cct.NumClasses*shards)
	)
	for it := range items {
		if !cancelled && ctx.Err() != nil {
			cancelled = true
		}
		if cancelled {
			// Drain without folding so blocked decoders can finish.
			res.Add(-1)
			continue
		}
		inputs.Inc()
		inputNodes.Add(uint64(it.nodes))
		bytesRead.Add(uint64(it.bytes))
		ranks[it.p.Rank] = true
		if !have || it.p.Rank < bestRank || (it.p.Rank == bestRank && it.p.Thread < bestThread) {
			bestRank, bestThread, bestEvent = it.p.Rank, it.p.Thread, it.p.Event
			have = true
		}
		// Fold the profile's temporal sidecar BEFORE fanning its trees out:
		// the index walks node parent chains, and folders adopt and mutate
		// trees concurrently once they are on the shard channels. The fold
		// copies everything it needs, so it holds no node references after.
		if err := tix.AddSeries(it.p); err != nil && quar != nil {
			quar.add(it.path, fmt.Sprintf("temporal sidecar dropped: %v", err), 0)
		}
		// Group the profile's root subtrees by (class, shard). rem counts
		// the shard items actually produced, so residency drops exactly
		// when the profile's last piece is folded. A panic while grouping
		// (a nil or structurally damaged tree the decoder let through) is
		// the fault boundary the folders used to own; with quarantining on
		// it becomes a per-file record, without it (the in-memory merge
		// paths) it propagates as before.
		sent, gerr := groupShards(it, shards, buckets, quar != nil)
		if gerr != nil {
			for i := range buckets {
				buckets[i] = nil
			}
			quar.add(it.path, gerr.Error(), 0)
			foldPanics.Inc()
			res.Add(-1)
			lastItemSeen = time.Now()
			continue
		}
		if sent == 0 {
			res.Add(-1)
			lastItemSeen = time.Now()
			continue
		}
		rem := new(int32)
		*rem = int32(sent)
		for i, b := range buckets {
			if b == nil {
				continue
			}
			buckets[i] = nil
			b.rem = rem
			foldQueue.Add(1)
			chans[i/shards][i%shards] <- *b
		}
		lastItemSeen = time.Now()
	}
	decodeWall := time.Duration(0)
	if have {
		decodeWall = lastItemSeen.Sub(start)
	}
	for c := range chans {
		for k := range chans[c] {
			close(chans[c][k])
		}
	}
	fwg.Wait()
	foldWall := time.Since(start)

	// Hierarchical reduce: per class, pairwise parallel rounds over the
	// shard accumulators. Shards partition root subtrees, so each Absorb
	// moves pointers instead of walking trees.
	reduceStart := time.Now()
	reduceDone := spans.Span("reduce accumulators", "merge", 0, 0,
		map[string]any{"shards": shards})
	merged := cct.NewProfile(bestRank, bestThread, bestEvent)
	var rwg sync.WaitGroup
	for c := 0; c < cct.NumClasses; c++ {
		rwg.Add(1)
		go func(c int) {
			defer rwg.Done()
			defer spans.Span(fmt.Sprintf("reduce %s", cct.Class(c)), "merge",
				0, foldTidBase+c*shards, nil)()
			trees := accs[c]
			for n := len(trees); n > 1; {
				half := (n + 1) / 2
				var pwg sync.WaitGroup
				for i := 0; i+half < n; i++ {
					pwg.Add(1)
					go func(i int) {
						defer pwg.Done()
						trees[i].Absorb(trees[i+half])
					}(i)
				}
				pwg.Wait()
				n = half
			}
			merged.Trees[c] = trees[0]
		}(c)
	}
	rwg.Wait()
	reduceDone()
	reduceWall := time.Since(reduceStart)
	mergeWall := time.Since(start)
	spans.Complete("merge pipeline", "merge", 0, 0, start, mergeWall,
		map[string]any{"workers": workers})

	// Publish the remaining roll-ups, then build MergeStats as a pure view
	// over the registry.
	reg.Gauge(instNodesMerged).Set(int64(merged.NumNodes()))
	reg.Gauge(instDecodeWallUS).Set(decodeWall.Microseconds())
	reg.Gauge(instMergeWallUS).Set(mergeWall.Microseconds())
	reg.Gauge(instFoldWallUS).Set(foldWall.Microseconds())
	reg.Gauge(instReduceWallUS).Set(reduceWall.Microseconds())
	var quarantined []QuarantinedFile
	if quar != nil {
		quarantined = quar.sorted()
		salvaged := 0
		for _, q := range quarantined {
			salvaged += q.SalvagedTrees
		}
		reg.Counter(instQuarFiles).Add(uint64(len(quarantined)))
		reg.Counter(instQuarSalvaged).Add(uint64(salvaged))
	}
	reg.Counter(instTemporalSeries).Add(uint64(tix.Series))
	reg.Counter(instTemporalDropped).Add(uint64(tix.Dropped))
	st := statsView(reg, workers, quarantined)
	db := &Database{Merged: merged, Ranks: len(ranks), Threads: st.Inputs, Event: bestEvent}
	if tix.NumWindows() > 0 {
		db.Temporal = tix
	}
	return db, st
}

// foldTidBase offsets folder goroutines' trace rows past the decode
// workers' (tid 1..workers), so viewers show the two stages separately.
const foldTidBase = 100

// statsView assembles MergeStats by reading the per-merge registry — the
// struct is presentation, the registry is the single source of truth.
func statsView(reg *telemetry.Registry, workers int, quarantined []QuarantinedFile) MergeStats {
	s := reg.Snapshot()
	dh := s.Histograms[instDecodeLatencyUS]
	return MergeStats{
		Workers:       workers,
		Inputs:        int(s.Counters[instProfilesMerged]),
		InputNodes:    int(s.Counters[instNodesInput]),
		MergedNodes:   int(s.Gauges[instNodesMerged].Value),
		BytesRead:     int64(s.Counters[instBytesRead]),
		DecodeWall:    time.Duration(s.Gauges[instDecodeWallUS].Value) * time.Microsecond,
		MergeWall:     time.Duration(s.Gauges[instMergeWallUS].Value) * time.Microsecond,
		FoldWall:      time.Duration(s.Gauges[instFoldWallUS].Value) * time.Microsecond,
		ReduceWall:    time.Duration(s.Gauges[instReduceWallUS].Value) * time.Microsecond,
		MaxResident:   int(s.Gauges[instResidency].Max),
		DecodeFileP50: time.Duration(dh.P50) * time.Microsecond,
		DecodeFileP95: time.Duration(dh.P95) * time.Microsecond,
		DecodeFileP99: time.Duration(dh.P99) * time.Microsecond,
		Quarantined:   quarantined,
	}
}

// groupShards partitions one profile's root subtrees into the split
// stage's (class, shard) buckets and returns the number of distinct
// buckets touched. With recoverPanics it converts a panic — a nil class
// tree, structure a decoder bug let through — into an error for the
// caller to quarantine.
func groupShards(it streamItem, shards int, buckets []*shardItem, recoverPanics bool) (sent int, err error) {
	if recoverPanics {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic folding profile: %v", r)
			}
		}()
	}
	bucket := func(c, k int) *shardItem {
		b := buckets[c*shards+k]
		if b == nil {
			b = &shardItem{path: it.path}
			buckets[c*shards+k] = b
			sent++
		}
		return b
	}
	for c, tr := range it.p.Trees {
		if tr.Root.Metrics != (metric.Vector{}) {
			bucket(c, 0).rootMetrics = tr.Root.Metrics
		}
		tr.Root.EachChild(func(r *cct.Node) {
			b := bucket(c, shardOf(r.ID(), shards))
			b.roots = append(b.roots, r)
		})
	}
	return sent, nil
}

// foldShard folds one shard item into the shard's accumulator. With
// preserve=false the item's subtrees are adopted (re-parented, no
// copying); with preserve=true they are merged in by copy and the source
// profile stays untouched.
func foldShard(acc *cct.Tree, it shardItem, preserve bool) {
	acc.Root.Metrics.Add(&it.rootMetrics)
	for _, r := range it.roots {
		if preserve {
			acc.Root.ChildID(r.ID()).MergeFrom(r)
		} else {
			acc.Root.MergeChild(r)
		}
	}
}

// foldShardRecovering is foldShard converting a panic (a decoder bug
// surfacing in merge, or damaged structure the format checks missed) into
// a quarantine record for the item's source file. The accumulator may
// have absorbed part of the item before the panic — the merge is
// best-effort for that file, which is what the quarantine record
// documents.
func foldShardRecovering(acc *cct.Tree, it shardItem, preserve bool, c cct.Class, quar *quarantineLog, panics *telemetry.Counter) {
	defer func() {
		if r := recover(); r != nil {
			path := it.path
			if path == "" {
				path = "(in-memory profile)"
			}
			quar.add(path, fmt.Sprintf("panic folding %s tree: %v", c, r), 0)
			panics.Inc()
		}
	}()
	foldShard(acc, it, preserve)
}

// mergeSlice feeds an in-memory profile slice through the engine.
func mergeSlice(profiles []*cct.Profile, workers int, preserve bool) (*Database, MergeStats) {
	items := make(chan streamItem, 1)
	go func() {
		for _, p := range profiles {
			items <- streamItem{p: p}
		}
		close(items)
	}()
	return mergeItems(context.Background(), items, workers, 0, preserve, telemetry.New(), nil, nil, nil)
}

// MergeStream merges profiles as they arrive on ch, with the same bounded
// fan-out as Merge. Like Merge it consumes its inputs: some arriving
// profiles are adopted as accumulators and mutated.
func MergeStream(ch <-chan *cct.Profile, workers int) (*Database, MergeStats) {
	items := make(chan streamItem, 1)
	go func() {
		for p := range ch {
			items <- streamItem{p: p, nodes: p.NumNodes()}
		}
		close(items)
	}()
	return mergeItems(context.Background(), items, workers, 0, false, telemetry.New(), nil, nil, nil)
}

// LoadDirStreaming reads a measurement directory written by profio.WriteDir
// through the streaming pipeline with PolicyStrict and no cancellation —
// the historical behavior. See LoadDirStreamingCtx for the full surface.
func LoadDirStreaming(dir string, workers int) (*Database, MergeStats, error) {
	return LoadDirStreamingCtx(context.Background(), dir, LoadOptions{Workers: workers})
}

// LoadDirStreamingCtx reads a measurement directory through the streaming
// pipeline: `workers` decoders read files incrementally (sharing one
// string-interning cache) and feed the merge stage as each profile
// completes. At most about 2×workers decoded profiles are ever resident —
// MergeStats.MaxResident records the observed peak — so directory size
// does not bound memory.
//
// Failure handling follows opt.Policy: strict aborts on the first
// unreadable file; quarantine and salvage record bad files in
// MergeStats.Quarantined and keep going (salvage additionally folds in the
// intact class trees recovered from damaged files). Cancelling ctx stops
// decoding and folding promptly and returns the context's error. A panic
// in a decode worker is treated as that file being unreadable; a panic in
// a fold worker quarantines the offending file's tree.
func LoadDirStreamingCtx(ctx context.Context, dir string, opt LoadOptions) (*Database, MergeStats, error) {
	files, err := profio.Files(dir)
	if err != nil {
		return nil, MergeStats{}, fmt.Errorf("analysis: %w", err)
	}
	if len(files) == 0 {
		return nil, MergeStats{}, fmt.Errorf("analysis: no profiles in %s", dir)
	}
	return LoadFilesStreamingCtx(ctx, dir, files, opt)
}

// LoadFilesStreamingCtx is the merge-by-handle entry point: it runs the
// same streaming pipeline as LoadDirStreamingCtx over an explicit list of
// profile file paths instead of a directory scan. Callers that already
// know exactly which files constitute a dataset — the profiling service
// merging the snapshot of a collection pinned at a content generation —
// use this so a file landing mid-merge can never leak into the result.
// label names the dataset in spans and error messages.
func LoadFilesStreamingCtx(ctx context.Context, label string, files []string, opt LoadOptions) (*Database, MergeStats, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	open := opt.Open
	if open == nil {
		open = func(path string) (io.ReadCloser, error) { return os.Open(path) }
	}
	reg := telemetry.New()
	if opt.Telemetry != nil {
		// Publish the private per-load accounting into the caller's
		// registry whichever way the load ends.
		defer func() { opt.Telemetry.Absorb(reg.Snapshot()) }()
	}
	spans := opt.Spans
	loadDone := spans.Span("load "+label, "ingest", 0, 0, map[string]any{"workers": workers})
	defer loadDone()

	if len(files) == 0 {
		return nil, MergeStats{}, fmt.Errorf("analysis: no profiles in %s", label)
	}
	reg.Counter(instFilesDiscovered).Add(uint64(len(files)))

	var (
		res = reg.Gauge(instResidency)
		// Per-file decode latency distribution: pow-2 µs buckets up to ~4s,
		// same shape as the server's HTTP latency histograms. Its quantiles
		// surface in MergeStats/StatsReport — one slow file in a thousand
		// is a p99 signal, invisible in the decode wall total.
		decLat = reg.Histogram(instDecodeLatencyUS, telemetry.Pow2Bounds(22))
		intern = profio.NewIntern()
		quar   = newQuarantineLog()
		items  = make(chan streamItem)
		paths  = make(chan string)
		errMu  sync.Mutex
		first  error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return first != nil
	}

	var dwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		dwg.Add(1)
		go func(w int) {
			defer dwg.Done()
			for path := range paths {
				if ctx.Err() != nil || failed() {
					continue // keep draining so the feeder never blocks
				}
				decodeDone := spans.Span("decode "+filepath.Base(path), "ingest",
					0, w+1, nil)
				t0 := time.Now()
				it, ok := decodeOne(path, intern, open, opt.Policy, opt.SectionParallel, fail, quar)
				decLat.Observe(uint64(time.Since(t0).Microseconds()))
				decodeDone()
				if !ok {
					spans.Instant("quarantine "+filepath.Base(path), "ingest", 0, w+1, nil)
					continue
				}
				res.Add(1)
				select {
				case items <- it:
				case <-ctx.Done():
					res.Add(-1)
				}
			}
		}(w)
	}
	go func() {
		defer close(paths)
		for _, f := range files {
			select {
			case paths <- f:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		dwg.Wait()
		close(items)
	}()

	db, st := mergeItems(ctx, items, workers, opt.Shards, false, reg, res, quar, spans)
	if err := ctx.Err(); err != nil {
		return nil, st, fmt.Errorf("analysis: %w", err)
	}
	if failed() {
		errMu.Lock()
		defer errMu.Unlock()
		return nil, st, first
	}
	if st.Inputs == 0 {
		return nil, st, fmt.Errorf("analysis: no readable profiles in %s (%d quarantined)", label, len(st.Quarantined))
	}
	db.MeasurementBytes = st.BytesRead
	emitPhaseSpans(spans, db.Temporal)
	return db, st, nil
}

// decodeOne reads one profile file under the given error policy. It
// returns ok=false when the file produced nothing to merge — because it
// was quarantined, or because strict mode recorded a pipeline-aborting
// error. Panics while opening or decoding are contained here and treated
// exactly like decode errors, so one poisoned file cannot take down the
// analyzer.
//
// When sectionParallel > 1 and the opened handle supports random access,
// the file's class-tree sections are decoded concurrently first
// (profio.ReadProfileAt). The fast path only succeeds on fully intact
// files; any failure falls through to the sequential reader below, whose
// strict/quarantine/salvage semantics are authoritative — an intact file
// decodes identically either way, so policies cannot observe which path
// ran.
func decodeOne(path string, in *profio.Intern, open func(string) (io.ReadCloser, error), policy ErrorPolicy, sectionParallel int, fail func(error), quar *quarantineLog) (it streamItem, ok bool) {
	var (
		p     *cct.Profile
		nodes int
		salv  *profio.Salvage
		err   error
	)
	size, derr := func() (size int64, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic decoding profile: %v", r)
			}
		}()
		f, err := open(path)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		if st, serr := statSize(f); serr == nil {
			size = st
		}
		if sectionParallel > 1 && size > 0 {
			if ra, isRA := f.(io.ReaderAt); isRA {
				if pp, n, perr := profio.ReadProfileAt(ra, size, in, sectionParallel); perr == nil {
					p, nodes = pp, n
					return size, nil
				}
				// ReadProfileAt uses only ReadAt, which leaves an os.File's
				// seek offset alone; reset anyway for handles that couple
				// the two, then let the sequential reader rule on the file.
				if sk, isSeek := f.(io.Seeker); isSeek {
					if _, serr := sk.Seek(0, io.SeekStart); serr != nil {
						return size, fmt.Errorf("rewinding after parallel decode: %w", serr)
					}
				}
			}
		}
		switch policy {
		case PolicyStrict:
			d, err := profio.NewReaderInterned(f, in)
			if err != nil {
				return size, err
			}
			p, err = d.ReadRest()
			if err != nil {
				return size, err
			}
			nodes = d.NodesRead()
		default:
			salv, err = profio.SalvageProfile(f, in)
			if err != nil {
				return size, err
			}
		}
		return size, nil
	}()
	err = derr

	switch {
	case err != nil && policy == PolicyStrict:
		// Full path, not the basename: multi-directory merges must be
		// diagnosable from the error alone.
		fail(fmt.Errorf("analysis: %s: %w", path, err))
		return streamItem{}, false
	case err != nil:
		quar.add(path, err.Error(), 0)
		return streamItem{}, false
	}

	// salv is nil under a non-strict policy when the parallel fast path
	// already produced the (necessarily intact) profile.
	if policy != PolicyStrict && salv != nil {
		if !salv.Intact() {
			reason := "damaged"
			if len(salv.Errs) > 0 {
				reason = salv.Errs[0].Error()
			}
			quar.add(path, reason, salv.Trees)
			// Sidecar-only damage — every class tree recovered, only the
			// optional temporal section corrupt — keeps the file in the
			// merge (windowless) under quarantine too; the quarantine
			// record above still documents the loss. Anything else follows
			// the policy: quarantine skips the file, salvage folds what's
			// left.
			if !salv.SidecarOnly && (policy == PolicyQuarantine || salv.Trees == 0) {
				return streamItem{}, false
			}
		}
		p = salv.Profile
		nodes = salv.NodesRead
	}
	return streamItem{p: p, path: path, bytes: size, nodes: nodes}, true
}

// statSize reports the on-disk size when the opened reader is a real file.
func statSize(r io.Reader) (int64, error) {
	f, ok := r.(interface{ Stat() (os.FileInfo, error) })
	if !ok {
		return 0, fmt.Errorf("not a file")
	}
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
