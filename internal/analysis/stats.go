package analysis

import (
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"time"

	"dcprof/internal/cct"
)

// MergeStats quantifies the scalability properties the paper claims for
// its measurement and analysis pipeline (§2.2, §4.2): profiles stay
// compact because CCTs coalesce identical contexts, and the reduction-tree
// merge parallelizes.
type MergeStats struct {
	// Inputs is the number of thread profiles merged.
	Inputs int
	// InputNodes sums CCT nodes across the inputs; MergedNodes counts the
	// merged result's nodes. Their ratio is the cross-thread coalescing
	// factor: threads executing the same code produce near-identical CCTs
	// that collapse into one.
	InputNodes, MergedNodes int
	// SequentialMerge and ParallelMerge are wall times for a 1-worker and
	// a GOMAXPROCS-worker reduction over (copies of) the same inputs.
	SequentialMerge, ParallelMerge time.Duration

	// Workers is the concurrency the streaming pipeline ran with.
	Workers int
	// BytesRead is the total on-disk measurement size ingested (0 for
	// in-memory merges).
	BytesRead int64
	// DecodeWall and MergeWall are per-stage wall times of the streaming
	// pipeline, both measured from pipeline start: DecodeWall ends when
	// the last profile finished decoding, MergeWall when the merged
	// database was assembled. The stages overlap — that they nearly
	// coincide is the pipelining win.
	DecodeWall, MergeWall time.Duration
	// FoldWall and ReduceWall break MergeWall down: FoldWall (also from
	// pipeline start) ends when every shard folder has drained, ReduceWall
	// is the duration of the final shard-accumulator reduce alone — the
	// only barrier in the pipeline, and with shared-nothing sharding it
	// should be near zero (pointer adoption, not tree walks).
	FoldWall, ReduceWall time.Duration
	// MaxResident is the peak number of decoded profiles simultaneously
	// alive in the pipeline — bounded by ~2×Workers regardless of how
	// many files the measurement holds (0 for in-memory merges, where
	// the caller already owns every profile).
	MaxResident int
	// DecodeFileP50/P95/P99 are per-file decode latency quantiles from
	// the streaming pipeline's histogram — the tail a slow disk or one
	// pathological file produces, invisible in DecodeWall's total (zero
	// for in-memory merges).
	DecodeFileP50, DecodeFileP95, DecodeFileP99 time.Duration

	// Quarantined lists the files skipped (or only partially recovered)
	// by a quarantine- or salvage-policy ingest, sorted by path. Empty
	// for strict merges, which abort instead.
	Quarantined []QuarantinedFile
}

// QuarantinedFile records one measurement file the ingest pipeline could
// not (fully) use, and why — the per-file accounting that makes a degraded
// Sequoia-scale merge auditable instead of silently lossy.
type QuarantinedFile struct {
	// Path is the full path of the damaged file.
	Path string
	// Reason is the first error the file produced (decode failure,
	// checksum mismatch, truncation, injected fault, worker panic, ...).
	Reason string
	// SalvagedTrees counts the complete, integrity-checked class trees
	// that were recoverable from the file. Under PolicySalvage they were
	// merged; under PolicyQuarantine they were discarded with the file.
	SalvagedTrees int
}

// StatsReport is the machine-readable rendering of MergeStats, with stable
// snake_case field names and stage walls in integer microseconds so
// downstream tooling never parses Go duration strings.
type StatsReport struct {
	Inputs           int                 `json:"inputs"`
	InputNodes       int                 `json:"input_nodes"`
	MergedNodes      int                 `json:"merged_nodes"`
	CoalescingFactor float64             `json:"coalescing_factor"`
	Workers          int                 `json:"workers"`
	BytesRead        int64               `json:"bytes_read"`
	DecodeWallUS     int64               `json:"decode_wall_us"`
	MergeWallUS      int64               `json:"merge_wall_us"`
	FoldWallUS       int64               `json:"fold_wall_us"`
	ReduceWallUS     int64               `json:"reduce_wall_us"`
	MaxResident      int                 `json:"max_resident"`
	DecodeFileP50US  int64               `json:"decode_file_p50_us"`
	DecodeFileP95US  int64               `json:"decode_file_p95_us"`
	DecodeFileP99US  int64               `json:"decode_file_p99_us"`
	Quarantined      []QuarantinedReport `json:"quarantined"`
}

// QuarantinedReport is the JSON form of one QuarantinedFile.
type QuarantinedReport struct {
	Path          string `json:"path"`
	Reason        string `json:"reason"`
	SalvagedTrees int    `json:"salvaged_trees"`
}

// Report converts the stats to their JSON form. Quarantined is always a
// (possibly empty) array, never null.
func (s MergeStats) Report() StatsReport {
	r := StatsReport{
		Inputs:           s.Inputs,
		InputNodes:       s.InputNodes,
		MergedNodes:      s.MergedNodes,
		CoalescingFactor: s.CoalescingFactor(),
		Workers:          s.Workers,
		BytesRead:        s.BytesRead,
		DecodeWallUS:     s.DecodeWall.Microseconds(),
		MergeWallUS:      s.MergeWall.Microseconds(),
		FoldWallUS:       s.FoldWall.Microseconds(),
		ReduceWallUS:     s.ReduceWall.Microseconds(),
		MaxResident:      s.MaxResident,
		DecodeFileP50US:  s.DecodeFileP50.Microseconds(),
		DecodeFileP95US:  s.DecodeFileP95.Microseconds(),
		DecodeFileP99US:  s.DecodeFileP99.Microseconds(),
		Quarantined:      make([]QuarantinedReport, 0, len(s.Quarantined)),
	}
	for _, q := range s.Quarantined {
		r.Quarantined = append(r.Quarantined, QuarantinedReport{
			Path: q.Path, Reason: q.Reason, SalvagedTrees: q.SalvagedTrees,
		})
	}
	return r
}

// MergeStats converts a parsed report back to its MergeStats form — the
// inverse of Report for every field the report carries. Round-tripping
// stats through Report / MergeStats / Report is lossless, which is what
// lets the JSON-surface tests prove schema and struct agree.
func (r StatsReport) MergeStats() MergeStats {
	s := MergeStats{
		Inputs:        r.Inputs,
		InputNodes:    r.InputNodes,
		MergedNodes:   r.MergedNodes,
		Workers:       r.Workers,
		BytesRead:     r.BytesRead,
		DecodeWall:    time.Duration(r.DecodeWallUS) * time.Microsecond,
		MergeWall:     time.Duration(r.MergeWallUS) * time.Microsecond,
		FoldWall:      time.Duration(r.FoldWallUS) * time.Microsecond,
		ReduceWall:    time.Duration(r.ReduceWallUS) * time.Microsecond,
		MaxResident:   r.MaxResident,
		DecodeFileP50: time.Duration(r.DecodeFileP50US) * time.Microsecond,
		DecodeFileP95: time.Duration(r.DecodeFileP95US) * time.Microsecond,
		DecodeFileP99: time.Duration(r.DecodeFileP99US) * time.Microsecond,
	}
	for _, q := range r.Quarantined {
		s.Quarantined = append(s.Quarantined, QuarantinedFile{
			Path: q.Path, Reason: q.Reason, SalvagedTrees: q.SalvagedTrees,
		})
	}
	return s
}

// WriteStatsReport renders the merge statistics as indented JSON — the
// single serialization behind both `dcview -stats -json` and the serving
// layer's /stats endpoint, so the two surfaces cannot drift.
func WriteStatsReport(w io.Writer, st MergeStats) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st.Report())
}

// CoalescingFactor returns InputNodes / MergedNodes (1.0 = no sharing).
func (s MergeStats) CoalescingFactor() float64 {
	if s.MergedNodes == 0 {
		return 0
	}
	return float64(s.InputNodes) / float64(s.MergedNodes)
}

// MeasureMerge clones the profiles twice and times a sequential and a
// parallel reduction over them, returning the statistics. The inputs are
// left untouched.
func MeasureMerge(profiles []*cct.Profile) MergeStats {
	st := MergeStats{Inputs: len(profiles)}
	for _, p := range profiles {
		st.InputNodes += p.NumNodes()
	}
	clone := func() []*cct.Profile {
		out := make([]*cct.Profile, len(profiles))
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i, p := range profiles {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, p *cct.Profile) {
				defer wg.Done()
				c := cct.NewProfile(p.Rank, p.Thread, p.Event)
				c.Merge(p)
				out[i] = c
				<-sem
			}(i, p)
		}
		wg.Wait()
		return out
	}

	seqIn := clone()
	t0 := time.Now()
	seqDB := Merge(seqIn, 1)
	st.SequentialMerge = time.Since(t0)
	st.MergedNodes = seqDB.Merged.NumNodes()

	parIn := clone()
	t1 := time.Now()
	Merge(parIn, 0)
	st.ParallelMerge = time.Since(t1)
	return st
}
