package analysis

import (
	"math/rand"
	"testing"

	"dcprof/internal/cct"
)

// Merge must be order-insensitive and associative: merging N profiles in
// any shuffled order, through any grouping, over either the batch wrapper
// or the streaming path, must yield the identical database (canonical
// sorted render). This is what licenses the pipeline to fold profiles in
// whatever order decoding completes.
func TestMergeOrderInsensitive(t *testing.T) {
	ps := randomProfiles(31, 3, 5) // 15 profiles
	want := canonicalProfile(MergePreserving(ps, 0).Merged)

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		shuffled := cloneProfiles(ps)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		workers := rng.Intn(8) + 1

		var got string
		switch trial % 3 {
		case 0: // batch path, consuming
			got = canonicalProfile(Merge(shuffled, workers).Merged)
		case 1: // batch path, preserving
			got = canonicalProfile(MergePreserving(shuffled, workers).Merged)
		default: // streaming path
			ch := make(chan *cct.Profile)
			go func() {
				for _, p := range shuffled {
					ch <- p
				}
				close(ch)
			}()
			db, _ := MergeStream(ch, workers)
			got = canonicalProfile(db.Merged)
		}
		if got != want {
			t.Fatalf("trial %d (workers=%d): shuffled merge differs from reference", trial, workers)
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	ps := randomProfiles(37, 2, 6) // 12 profiles
	want := canonicalProfile(MergePreserving(ps, 0).Merged)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		// Partition into random contiguous groups, merge each group
		// independently, then merge the group results.
		work := cloneProfiles(ps)
		rng.Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })
		var partials []*cct.Profile
		for len(work) > 0 {
			k := rng.Intn(len(work)) + 1
			group, rest := work[:k], work[k:]
			var db *Database
			if trial%2 == 0 {
				db = Merge(group, rng.Intn(4)+1)
			} else {
				db = MergePreserving(group, rng.Intn(4)+1)
			}
			partials = append(partials, db.Merged)
			work = rest
		}
		final := MergePreserving(partials, 2)
		if got := canonicalProfile(final.Merged); got != want {
			t.Fatalf("trial %d: grouped merge of %d partials differs from flat merge",
				trial, len(partials))
		}
	}
}

// The totals invariant holds across every path and worker count.
func TestMergeTotalsInvariant(t *testing.T) {
	ps := randomProfiles(41, 2, 9)
	want := totals(ps)
	for _, workers := range []int{1, 2, 5, 16} {
		if got := MergePreserving(ps, workers).Merged.Total(); got != want {
			t.Errorf("workers=%d: total %v, want %v", workers, got, want)
		}
	}
}
