// Interning-equivalence layer: the frame-interned hot path (FrameID-keyed
// CCTs, memoized decoding, ID-keyed view aggregation) must be invisible at
// every observable boundary. These tests pin that down on two real
// workloads — the Fig.1 microbenchmark and the AMG proxy app:
//
//   - the on-disk v2 encoding of an interned profile is deterministic and
//     round-trip byte-stable (encode -> decode -> encode is the identity on
//     bytes);
//   - rebuilding the same profile through the legacy string-keyed API
//     (AddSample on Frame values, no pre-interning anywhere) renders
//     byte-identical top-down, bottom-up, and variable tables.
package analysis_test

import (
	"bytes"
	"testing"

	"dcprof/internal/apps/amg"
	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/pmu"
	"dcprof/internal/profiler"
	"dcprof/internal/profio"
	"dcprof/internal/view"
)

func amgProfiles(t *testing.T) []*cct.Profile {
	t.Helper()
	cfg := amg.TestConfig()
	pc := profiler.MarkedConfig(pmu.MarkDataFromRMEM, 4)
	cfg.Profile = &pc
	r := amg.Run(cfg)
	if len(r.Profiles) == 0 {
		t.Fatal("amg run produced no profiles")
	}
	return r.Profiles
}

// reencode writes p, reads the bytes back, and writes the decoded profile
// again, returning both encodings.
func reencode(t *testing.T, p *cct.Profile) (first, second []byte) {
	t.Helper()
	var buf1 bytes.Buffer
	if err := profio.WriteProfile(&buf1, p); err != nil {
		t.Fatal(err)
	}
	dec, err := profio.ReadProfile(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := profio.WriteProfile(&buf2, dec); err != nil {
		t.Fatal(err)
	}
	return buf1.Bytes(), buf2.Bytes()
}

func checkByteStable(t *testing.T, ps []*cct.Profile) {
	t.Helper()
	for _, p := range ps {
		first, second := reencode(t, p)
		if len(first) == 0 {
			t.Fatal("empty encoding")
		}
		if !bytes.Equal(first, second) {
			t.Errorf("rank %d thread %d: re-encoding after decode changed bytes (%d vs %d)",
				p.Rank, p.Thread, len(first), len(second))
		}
		// Writing the same in-memory profile twice must be deterministic too
		// (child iteration goes through sorted Children, never map order).
		var again bytes.Buffer
		if err := profio.WriteProfile(&again, p); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again.Bytes()) {
			t.Errorf("rank %d thread %d: two encodings of one profile differ", p.Rank, p.Thread)
		}
	}
}

func TestEncodingByteStableMicro(t *testing.T) { checkByteStable(t, microProfiles(t)) }
func TestEncodingByteStableAMG(t *testing.T)   { checkByteStable(t, amgProfiles(t)) }

// stringRebuild reconstructs a profile through the string-keyed API alone:
// every node's path is re-inserted as Frame values, so child lookup runs
// the legacy Frame->ID route on every step. The result must be
// indistinguishable from the original in every view.
func stringRebuild(p *cct.Profile) *cct.Profile {
	out := cct.NewProfile(p.Rank, p.Thread, p.Event)
	for ci, tree := range p.Trees {
		dst := out.Trees[ci]
		tree.Walk(func(n *cct.Node, _ int) bool {
			if n.Frame.Kind == cct.KindRoot {
				dst.Root.Metrics.Add(&n.Metrics)
				return true
			}
			v := n.Metrics
			dst.AddSample(n.Path(), &v)
			return true
		})
	}
	return out
}

func checkViewsMatchStringKeyed(t *testing.T, ps []*cct.Profile) {
	t.Helper()
	merged := cct.NewProfile(0, 0, ps[0].Event)
	for _, p := range ps {
		merged.Merge(p)
	}
	ref := stringRebuild(merged)

	opts := view.Options{Metric: metric.Latency, MaxRows: 100, MaxDepth: 32, MinShare: 0}
	renders := map[string]func(*cct.Profile) string{
		"topdown":   func(p *cct.Profile) string { return view.RenderTopDown(p, opts) },
		"variables": func(p *cct.Profile) string { return view.RenderVariables(p, opts) },
		"bottomup":  func(p *cct.Profile) string { return view.RenderBottomUp(p, opts) },
	}
	for name, render := range renders {
		want, got := render(ref), render(merged)
		if want == "" {
			t.Fatalf("%s: empty reference render", name)
		}
		if got != want {
			t.Errorf("%s view differs between interned profile and string-keyed rebuild\nstring-keyed:\n%s\ninterned:\n%s",
				name, want, got)
		}
	}
	if merged.Total() != ref.Total() {
		t.Error("totals differ between interned profile and string-keyed rebuild")
	}
	if merged.NumNodes() != ref.NumNodes() {
		t.Errorf("node counts differ: interned %d, string-keyed %d", merged.NumNodes(), ref.NumNodes())
	}
}

func TestViewsMatchStringKeyedMicro(t *testing.T) { checkViewsMatchStringKeyed(t, microProfiles(t)) }
func TestViewsMatchStringKeyedAMG(t *testing.T)   { checkViewsMatchStringKeyed(t, amgProfiles(t)) }
