// Package statstest is test support for the two JSON surfaces that render
// analysis.MergeStats — `dcview -stats -json` and dcprofd's /stats
// endpoint. Both of their tests pass raw response bytes through RoundTrip,
// which asserts the one schema both must follow, so the surfaces cannot
// drift apart without a test failing.
package statstest

import (
	"bytes"
	"encoding/json"
	"testing"

	"dcprof/internal/analysis"
)

// RoundTrip decodes data as a StatsReport under a strict schema check and
// proves the decode is lossless: every key in the JSON must be a known
// report field (unknown keys fail — the schema grew without the struct),
// and re-encoding the parsed report must reproduce the document exactly
// (a dropped or retyped field fails — the struct grew without the schema).
// It returns the parsed report for caller-side value assertions.
func RoundTrip(t testing.TB, data []byte) analysis.StatsReport {
	t.Helper()

	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep analysis.StatsReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("stats JSON does not match the StatsReport schema: %v\n%s", err, data)
	}

	var back bytes.Buffer
	if err := analysis.WriteStatsReport(&back, rep.MergeStats()); err != nil {
		t.Fatalf("re-encoding stats report: %v", err)
	}
	if !bytes.Equal(normalize(t, data), normalize(t, back.Bytes())) {
		t.Fatalf("stats JSON round-trip not lossless:\n--- original ---\n%s--- re-encoded ---\n%s", data, back.Bytes())
	}
	return rep
}

// normalize re-indents a JSON document so byte comparison ignores only
// whitespace differences between producers.
func normalize(t testing.TB, data []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}
