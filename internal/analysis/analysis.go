// Package analysis is the post-mortem analyzer: it gathers the per-thread
// profiles of an execution and merges them — per storage class, across
// threads and MPI processes — into one compact database for presentation.
//
// Merging is structural CCT merge (heap variables coalesce by allocation
// call path, statics by symbol), executed over a parallel reduction tree:
// profiles are paired and merged round by round, the Go analogue of the
// paper's MPI-based reduction-tree merge, with wall-clock logarithmic in
// the number of profiles for a fixed worker count.
package analysis

import (
	"fmt"
	"runtime"
	"sync"

	"dcprof/internal/cct"
	"dcprof/internal/profio"
)

// Database is the merged analysis result.
type Database struct {
	// Merged is the union of every thread's profile.
	Merged *cct.Profile
	// Ranks and Threads count the sources merged in.
	Ranks, Threads int
	// Event is the monitored-event description from the profiles.
	Event string
	// MeasurementBytes is the total size of the on-disk measurement data
	// when the database was loaded from files (0 when merged in memory).
	MeasurementBytes int64
}

// Merge reduces the profiles into a database using up to `workers`
// concurrent merges per round (workers <= 0 uses GOMAXPROCS). The input
// profiles are consumed: the first profile of each merged pair accumulates
// the second.
func Merge(profiles []*cct.Profile, workers int) *Database {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	db := &Database{}
	if len(profiles) == 0 {
		db.Merged = cct.NewProfile(0, 0, "")
		return db
	}
	ranks := map[int]bool{}
	for _, p := range profiles {
		ranks[p.Rank] = true
	}
	db.Ranks = len(ranks)
	db.Threads = len(profiles)
	db.Event = profiles[0].Event

	cur := make([]*cct.Profile, len(profiles))
	copy(cur, profiles)
	sem := make(chan struct{}, workers)
	for len(cur) > 1 {
		next := make([]*cct.Profile, 0, (len(cur)+1)/2)
		var wg sync.WaitGroup
		for i := 0; i+1 < len(cur); i += 2 {
			dst, src := cur[i], cur[i+1]
			next = append(next, dst)
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				dst.Merge(src)
				<-sem
			}()
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		wg.Wait()
		cur = next
	}
	db.Merged = cur[0]
	return db
}

// LoadDir reads a measurement directory written by profio.WriteDir and
// merges it.
func LoadDir(dir string, workers int) (*Database, error) {
	profiles, err := profio.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("analysis: no profiles in %s", dir)
	}
	var bytes int64
	for _, p := range profiles {
		n, err := profio.EncodedSize(p)
		if err != nil {
			return nil, err
		}
		bytes += n
	}
	db := Merge(profiles, workers)
	db.MeasurementBytes = bytes
	return db, nil
}
