// Package analysis is the post-mortem analyzer: it gathers the per-thread
// profiles of an execution and merges them — per storage class, across
// threads and MPI processes — into one compact database for presentation.
//
// Merging is structural CCT merge (heap variables coalesce by allocation
// call path, statics by symbol), executed as a streaming channel-fed
// reduction — the Go analogue of the paper's MPI-based reduction-tree
// merge. Profiles are decoded, split by storage class, and folded into
// bounded per-class accumulators as they arrive (see stream.go), so
// neither wall-clock nor memory grows with the number of profiles held
// resident at once.
package analysis

import (
	"dcprof/internal/cct"
	"dcprof/internal/temporal"
)

// Database is the merged analysis result.
type Database struct {
	// Merged is the union of every thread's profile.
	Merged *cct.Profile
	// Ranks and Threads count the sources merged in.
	Ranks, Threads int
	// Event is the monitored-event description from the profiles.
	Event string
	// MeasurementBytes is the total size of the on-disk measurement data
	// when the database was loaded from files (0 when merged in memory).
	MeasurementBytes int64
	// Temporal indexes the per-thread time-series sidecars merged into
	// per-window partial profiles. Nil when no input profile carried a
	// sidecar (temporal profiling off, or pre-sidecar files) — the
	// cumulative views above are unaffected either way.
	Temporal *temporal.Index
}

// Merge reduces the profiles into a database using up to `workers`
// concurrent folders (workers <= 0 uses GOMAXPROCS); it is a thin wrapper
// over the streaming engine in stream.go.
//
// The input profiles are CONSUMED: each folder adopts the first tree it
// receives as its accumulator and mutates it in place, so after Merge
// returns some inputs carry other inputs' metrics. Callers that need to
// merge the same profiles again (experiment drivers rerunning an analysis
// without re-decoding) must use MergePreserving instead.
func Merge(profiles []*cct.Profile, workers int) *Database {
	db, _ := mergeSlice(profiles, workers, false)
	return db
}

// MergePreserving is Merge without input consumption: accumulators start
// from fresh empty trees (copy-on-first-merge), so the input profiles are
// left untouched and can be merged again.
func MergePreserving(profiles []*cct.Profile, workers int) *Database {
	db, _ := mergeSlice(profiles, workers, true)
	return db
}

// LoadDir reads a measurement directory written by profio.WriteDir and
// merges it through the streaming pipeline, discarding the statistics.
func LoadDir(dir string, workers int) (*Database, error) {
	db, _, err := LoadDirStreaming(dir, workers)
	return db, err
}
