package analysis

// The failure-mode suite: every degradation path of the ingest pipeline,
// driven by deterministic fault injection (internal/faultio). These tests
// are the §4.2-at-scale robustness contract — a measurement directory with
// killed-rank debris merges under quarantine to exactly the merge of its
// intact files, cancellation is prompt and leak-free, and worker panics
// become per-file quarantine records instead of crashed analyzers.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"dcprof/internal/cct"
	"dcprof/internal/faultio"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
	"dcprof/internal/telemetry"
)

// renderDB is the deterministic byte rendering fault tests compare merge
// results with: the canonical tree walk plus the JSON export.
func renderDB(t *testing.T, db *Database) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(canonicalProfile(db.Merged))
	fmt.Fprintf(&b, "ranks=%d threads=%d event=%s bytes=%d\n",
		db.Ranks, db.Threads, db.Event, db.MeasurementBytes)
	if err := WriteJSON(&b, db); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineMergeMatchesIntactOnly is the headline acceptance test:
// for a 128-profile directory with k files damaged in distinct ways, a
// quarantine-mode merge succeeds, MergeStats lists exactly the k
// quarantined files with reasons, and the database renders byte-identical
// to merging only the 128-k intact files. Strict mode still fails fast.
func TestQuarantineMergeMatchesIntactOnly(t *testing.T) {
	ps := randomProfiles(42, 2, 64) // 128 thread profiles
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	files, err := profio.Files(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 128 {
		t.Fatalf("wrote %d files", len(files))
	}

	// Damage k=9 files, each a different failure mode.
	corrupt := map[string]func(path string) error{
		files[3]:   func(p string) error { return faultio.Truncate(p, 0) },  // empty file
		files[17]:  func(p string) error { return faultio.Truncate(p, 5) },  // cut inside header magic/version
		files[30]:  func(p string) error { return faultio.Truncate(p, 40) }, // cut inside string table
		files[55]:  func(p string) error { return truncateToFraction(p, 0.6) },
		files[64]:  func(p string) error { return faultio.FlipBit(p, 4, 0) }, // version field
		files[77]:  func(p string) error { return flipAtFraction(p, 0.3, 2) },
		files[90]:  func(p string) error { return flipAtFraction(p, 0.9, 7) },
		files[101]: func(p string) error { return faultio.Overwrite(p, []byte("not a profile at all")) },
		files[126]: func(p string) error { return faultio.Overwrite(p, nil) },
	}
	intactDir := filepath.Join(t.TempDir(), "intact")
	if err := os.MkdirAll(intactDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if _, bad := corrupt[f]; !bad {
			copyFile(t, f, filepath.Join(intactDir, filepath.Base(f)))
		}
	}
	for f, damage := range corrupt {
		if err := damage(f); err != nil {
			t.Fatal(err)
		}
	}

	// Strict mode fails fast and names the offending file by full path.
	_, _, err = LoadDirStreaming(dir, 4)
	if err == nil {
		t.Fatal("strict merge of damaged directory succeeded")
	}
	if !strings.Contains(err.Error(), dir+string(os.PathSeparator)) {
		t.Errorf("strict error %q lacks the full file path", err)
	}

	// Quarantine mode merges the rest.
	db, st, err := LoadDirStreamingCtx(context.Background(), dir,
		LoadOptions{Workers: 4, Policy: PolicyQuarantine})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Quarantined) != len(corrupt) {
		t.Fatalf("quarantined %d files, want %d: %+v", len(st.Quarantined), len(corrupt), st.Quarantined)
	}
	for i, q := range st.Quarantined {
		if _, ok := corrupt[q.Path]; !ok {
			t.Errorf("quarantined %s, which was not damaged", q.Path)
		}
		if q.Reason == "" {
			t.Errorf("%s quarantined without a reason", q.Path)
		}
		if i > 0 && st.Quarantined[i-1].Path >= q.Path {
			t.Error("quarantine report not sorted by path")
		}
	}
	if st.Inputs != 128-len(corrupt) {
		t.Errorf("merged %d inputs, want %d", st.Inputs, 128-len(corrupt))
	}

	// Byte-identical to merging only the intact files.
	want, wantSt, err := LoadDirStreaming(intactDir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, wantR := renderDB(t, db), renderDB(t, want); got != wantR {
		t.Error("quarantine merge differs from intact-only merge")
	}
	if st.BytesRead != wantSt.BytesRead {
		t.Errorf("bytes read %d, intact-only %d", st.BytesRead, wantSt.BytesRead)
	}
}

// truncateToFraction cuts a file to the given fraction of its size.
func truncateToFraction(path string, frac float64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	return faultio.Truncate(path, int64(float64(fi.Size())*frac))
}

// flipAtFraction flips one bit at the given fractional offset.
func flipAtFraction(path string, frac float64, bit uint) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	return faultio.FlipBit(path, int64(float64(fi.Size())*frac), bit)
}

// TestSalvageMergeRecoversPartialFiles checks PolicySalvage sits between
// quarantine (damaged files contribute nothing) and the undamaged merge:
// the salvaged class trees of a truncated file are folded in, and the
// quarantine record reports how many trees were recovered.
func TestSalvageMergeRecoversPartialFiles(t *testing.T) {
	ps := randomProfiles(7, 1, 8)
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	files, err := profio.Files(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := files[2]

	// Compute the expected salvage directly from the damaged image.
	if err := truncateToFraction(victim, 0.7); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	salv, err := profio.SalvageProfile(strings.NewReader(string(img)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if salv.Intact() {
		t.Fatal("truncation to 70% left the file intact; test needs a damaged file")
	}

	sum := func(v metric.Vector) uint64 {
		var s uint64
		for _, x := range v {
			s += x
		}
		return s
	}

	dbQ, stQ, err := LoadDirStreamingCtx(context.Background(), dir,
		LoadOptions{Workers: 2, Policy: PolicyQuarantine})
	if err != nil {
		t.Fatal(err)
	}
	dbS, stS, err := LoadDirStreamingCtx(context.Background(), dir,
		LoadOptions{Workers: 2, Policy: PolicySalvage})
	if err != nil {
		t.Fatal(err)
	}

	// Both policies report the damaged file, with its salvageable count.
	for _, st := range []MergeStats{stQ, stS} {
		if len(st.Quarantined) != 1 || st.Quarantined[0].Path != victim {
			t.Fatalf("quarantine report %+v, want just %s", st.Quarantined, victim)
		}
		if st.Quarantined[0].SalvagedTrees != salv.Trees {
			t.Errorf("reported %d salvaged trees, want %d", st.Quarantined[0].SalvagedTrees, salv.Trees)
		}
	}
	if stQ.Inputs != 7 {
		t.Errorf("quarantine merged %d inputs, want 7", stQ.Inputs)
	}
	if salv.Trees > 0 && stS.Inputs != 8 {
		t.Errorf("salvage merged %d inputs, want 8", stS.Inputs)
	}

	// Salvage total = quarantine total + what the salvage recovered.
	wantS := sum(dbQ.Merged.Total()) + sum(salv.Profile.Total())
	if got := sum(dbS.Merged.Total()); got != wantS {
		t.Errorf("salvage total %d, want %d (quarantine %d + salvaged %d)",
			got, wantS, sum(dbQ.Merged.Total()), sum(salv.Profile.Total()))
	}
}

// TestInjectedReadErrorQuarantined drives the EIO-on-read-k fault through
// the Open seam: the affected file is quarantined, everything else merges.
func TestInjectedReadErrorQuarantined(t *testing.T) {
	ps := randomProfiles(11, 1, 6)
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, profio.FileName(0, 3))
	open := func(path string) (io.ReadCloser, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		if path == victim {
			return faultio.WithCloser(faultio.FailingReader(f, 2), f), nil
		}
		return f, nil
	}

	db, st, err := LoadDirStreamingCtx(context.Background(), dir,
		LoadOptions{Workers: 3, Policy: PolicyQuarantine, Open: open})
	if err != nil {
		t.Fatal(err)
	}
	if st.Inputs != 5 || db.Threads != 5 {
		t.Errorf("merged %d inputs / %d threads, want 5", st.Inputs, db.Threads)
	}
	if len(st.Quarantined) != 1 || st.Quarantined[0].Path != victim {
		t.Fatalf("quarantine report %+v", st.Quarantined)
	}
	if !strings.Contains(st.Quarantined[0].Reason, "injected I/O error") {
		t.Errorf("reason %q does not surface the injected error", st.Quarantined[0].Reason)
	}

	// Strict mode propagates the same fault as a failure.
	if _, _, err := LoadDirStreamingCtx(context.Background(), dir,
		LoadOptions{Workers: 3, Policy: PolicyStrict, Open: open}); err == nil {
		t.Error("strict merge ignored the injected read error")
	}
}

// TestDecodePanicQuarantined: a panic inside a decode worker (here from a
// poisoned reader) must become a quarantine record, not a crashed process;
// strict mode must turn it into an ordinary error.
func TestDecodePanicQuarantined(t *testing.T) {
	ps := randomProfiles(13, 1, 4)
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, profio.FileName(0, 1))
	open := func(path string) (io.ReadCloser, error) {
		if path == victim {
			return io.NopCloser(faultio.PanicReader()), nil
		}
		return os.Open(path)
	}

	_, st, err := LoadDirStreamingCtx(context.Background(), dir,
		LoadOptions{Workers: 2, Policy: PolicyQuarantine, Open: open})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Quarantined) != 1 || !strings.Contains(st.Quarantined[0].Reason, "panic") {
		t.Fatalf("quarantine report %+v, want one panic record", st.Quarantined)
	}
	if st.Inputs != 3 {
		t.Errorf("merged %d inputs, want 3", st.Inputs)
	}

	_, _, err = LoadDirStreamingCtx(context.Background(), dir,
		LoadOptions{Workers: 2, Policy: PolicyStrict, Open: open})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Errorf("strict error = %v, want decode panic surfaced as error", err)
	}
}

// TestFoldPanicQuarantined injects a profile whose class tree is nil
// straight into the merge engine: the fold worker's recovery must convert
// the panic into a quarantine record attributed to the source file.
func TestFoldPanicQuarantined(t *testing.T) {
	good := randomProfiles(17, 1, 1)[0]
	poisoned := randomProfiles(17, 1, 2)[1]
	poisoned.Trees[cct.ClassHeap] = nil // MergeFrom will dereference this

	items := make(chan streamItem, 2)
	items <- streamItem{p: good, path: "good.dcprof"}
	items <- streamItem{p: poisoned, path: "poisoned.dcprof"}
	close(items)

	quar := newQuarantineLog()
	db, _ := mergeItems(context.Background(), items, 1, 0, false, telemetry.New(), nil, quar, nil)
	if db == nil {
		t.Fatal("merge returned nil database")
	}
	recs := quar.sorted()
	if len(recs) != 1 || recs[0].Path != "poisoned.dcprof" {
		t.Fatalf("quarantine records %+v, want one for poisoned.dcprof", recs)
	}
	if !strings.Contains(recs[0].Reason, "panic") {
		t.Errorf("reason %q does not mention the panic", recs[0].Reason)
	}
}

// TestLoadCancelReturnsPromptly: cancelling mid-merge must abort decoding
// (slowed to a crawl by injected slow reads) and return the context error
// quickly, leaking no goroutines.
func TestLoadCancelReturnsPromptly(t *testing.T) {
	ps := randomProfiles(19, 2, 32) // 64 files
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	open := func(path string) (io.ReadCloser, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		return faultio.WithCloser(faultio.SlowReader(f, 5*time.Millisecond), f), nil
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := LoadDirStreamingCtx(ctx, dir, LoadOptions{Workers: 4, Policy: PolicyQuarantine, Open: open})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 64 files x several slow reads each would take far longer than this
	// uncancelled; give generous slack for loaded CI machines.
	if elapsed > 3*time.Second {
		t.Errorf("cancel took %s, want prompt return", elapsed)
	}
	waitForGoroutines(t, before)
}

// TestNoGoroutineLeakAcrossPolicies: the pipeline's goroutines must all
// exit after every ingest mode, including degraded ones.
func TestNoGoroutineLeakAcrossPolicies(t *testing.T) {
	ps := randomProfiles(23, 1, 12)
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	if err := truncateToFraction(filepath.Join(dir, profio.FileName(0, 4)), 0.4); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	for _, policy := range []ErrorPolicy{PolicyStrict, PolicyQuarantine, PolicySalvage} {
		_, _, err := LoadDirStreamingCtx(context.Background(), dir, LoadOptions{Workers: 3, Policy: policy})
		if policy == PolicyStrict && err == nil {
			t.Error("strict merge of damaged dir succeeded")
		}
		if policy != PolicyStrict && err != nil {
			t.Errorf("%v merge failed: %v", policy, err)
		}
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines asserts the goroutine count returns to (at most) its
// pre-test level, allowing time for workers to observe shutdown.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines: %d before, %d after — pipeline leaked", before, runtime.NumGoroutine())
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAllFilesQuarantinedIsAnError: a directory with nothing readable must
// fail loudly, not return an empty database.
func TestAllFilesQuarantinedIsAnError(t *testing.T) {
	ps := randomProfiles(29, 1, 3)
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	files, err := profio.Files(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if err := faultio.Overwrite(f, []byte("junk")); err != nil {
			t.Fatal(err)
		}
	}
	_, st, err := LoadDirStreamingCtx(context.Background(), dir,
		LoadOptions{Workers: 2, Policy: PolicyQuarantine})
	if err == nil {
		t.Fatal("all-quarantined directory returned a database")
	}
	if len(st.Quarantined) != len(files) {
		t.Errorf("quarantined %d, want %d", len(st.Quarantined), len(files))
	}
}
