package analysis

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"path/filepath"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
)

func randomProfiles(seed int64, ranks, threads int) []*cct.Profile {
	rng := rand.New(rand.NewSource(seed))
	var out []*cct.Profile
	for r := 0; r < ranks; r++ {
		for th := 0; th < threads; th++ {
			p := cct.NewProfile(r, th, "IBS@4096")
			for i := 0; i < rng.Intn(30)+1; i++ {
				var v metric.Vector
				v[metric.Samples] = uint64(rng.Intn(10) + 1)
				v[metric.Latency] = uint64(rng.Intn(1000))
				class := cct.Class(rng.Intn(cct.NumClasses))
				path := []cct.Frame{
					{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
					{Kind: cct.KindStmt, Module: "exe", Name: "main", File: "main.c", Line: rng.Intn(20)},
				}
				p.Trees[class].AddSample(path, &v)
			}
			out = append(out, p)
		}
	}
	return out
}

func totals(ps []*cct.Profile) metric.Vector {
	var v metric.Vector
	for _, p := range ps {
		pv := p.Total()
		v.Add(&pv)
	}
	return v
}

func TestMergePreservesTotals(t *testing.T) {
	ps := randomProfiles(7, 3, 4)
	want := totals(ps)
	db := Merge(ps, 4)
	if got := db.Merged.Total(); got != want {
		t.Errorf("merged total %v, want %v", got.String(), want.String())
	}
	if db.Ranks != 3 || db.Threads != 12 {
		t.Errorf("ranks=%d threads=%d, want 3,12", db.Ranks, db.Threads)
	}
	if db.Event != "IBS@4096" {
		t.Errorf("event = %q", db.Event)
	}
}

func TestMergeParallelMatchesSequential(t *testing.T) {
	a := Merge(randomProfiles(11, 2, 8), 1)
	b := Merge(randomProfiles(11, 2, 8), 8)
	if a.Merged.Total() != b.Merged.Total() {
		t.Error("parallel merge total differs from sequential")
	}
	if a.Merged.NumNodes() != b.Merged.NumNodes() {
		t.Error("parallel merge structure differs from sequential")
	}
}

func TestMergeSingleProfile(t *testing.T) {
	ps := randomProfiles(3, 1, 1)
	want := ps[0].Total()
	db := Merge(ps, 4)
	if db.Merged.Total() != want {
		t.Error("single-profile merge altered totals")
	}
}

func TestMergeEmpty(t *testing.T) {
	db := Merge(nil, 4)
	if db.Merged == nil || db.Threads != 0 {
		t.Error("empty merge not well-formed")
	}
}

func TestMergeOddCount(t *testing.T) {
	ps := randomProfiles(5, 1, 7) // odd
	want := totals(ps)
	db := Merge(ps, 3)
	if db.Merged.Total() != want {
		t.Error("odd-count reduction lost a profile")
	}
}

func TestLoadDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "m")
	ps := randomProfiles(9, 2, 3)
	want := totals(ps)
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	db, err := LoadDir(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if db.Merged.Total() != want {
		t.Error("LoadDir totals differ")
	}
	if db.MeasurementBytes <= 0 {
		t.Error("MeasurementBytes not recorded")
	}
	if db.Ranks != 2 || db.Threads != 6 {
		t.Errorf("ranks=%d threads=%d", db.Ranks, db.Threads)
	}
}

func TestLoadDirEmpty(t *testing.T) {
	if _, err := LoadDir(t.TempDir(), 1); err == nil {
		t.Error("empty directory accepted")
	}
}

func BenchmarkMerge128Threads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ps := randomProfiles(42, 1, 128)
		b.StartTimer()
		Merge(ps, 8)
	}
}

func TestMeasureMergeCoalescing(t *testing.T) {
	// 64 threads running identical code produce near-identical CCTs; the
	// merge must collapse them (the paper's scalability claim).
	base := randomProfiles(21, 1, 1)[0]
	var ps []*cct.Profile
	for th := 0; th < 64; th++ {
		c := cct.NewProfile(0, th, base.Event)
		c.Merge(base)
		ps = append(ps, c)
	}
	st := MeasureMerge(ps)
	if st.Inputs != 64 {
		t.Fatalf("inputs = %d", st.Inputs)
	}
	if st.MergedNodes != base.NumNodes() {
		t.Errorf("merged nodes = %d, want the single-thread count %d",
			st.MergedNodes, base.NumNodes())
	}
	if st.CoalescingFactor() < 60 {
		t.Errorf("coalescing factor = %.1f, want ~64", st.CoalescingFactor())
	}
	// Inputs untouched.
	if ps[0].NumNodes() != base.NumNodes() {
		t.Error("MeasureMerge mutated its inputs")
	}
}

func TestMeasureMergeTimesPopulated(t *testing.T) {
	ps := randomProfiles(5, 2, 16)
	st := MeasureMerge(ps)
	if st.SequentialMerge <= 0 || st.ParallelMerge <= 0 {
		t.Errorf("merge timings not measured: %+v", st)
	}
	if st.InputNodes == 0 || st.MergedNodes == 0 {
		t.Errorf("node counts missing: %+v", st)
	}
}

func TestJSONExport(t *testing.T) {
	ps := randomProfiles(13, 1, 3)
	want := totals(ps)
	db := Merge(ps, 0)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, db); err != nil {
		t.Fatal(err)
	}
	var back JSONDatabase
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if back.Event != db.Event || back.Threads != 3 {
		t.Errorf("header = %+v", back)
	}
	if len(back.Classes) != cct.NumClasses {
		t.Errorf("classes = %d", len(back.Classes))
	}
	// Metric totals survive the export.
	var sum uint64
	var walk func(n *JSONNode)
	walk = func(n *JSONNode) {
		sum += n.Metrics["SAMPLES"]
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, root := range back.Classes {
		walk(root)
	}
	if sum != want[metric.Samples] {
		t.Errorf("exported samples = %d, want %d", sum, want[metric.Samples])
	}
}
