package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
	"dcprof/internal/telemetry"
)

// encodeDB renders a merged profile to its canonical v3 byte image —
// the strongest equality we can ask of two merge results.
func encodeDB(t testing.TB, db *Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := profio.WriteProfile(&buf, db.Merged); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergeShardInvariance is the tentpole correctness property: the
// sharded shared-nothing merge must produce a byte-identical encoded
// result for every shard count — sharding is a scheduling decision, never
// a semantic one.
func TestMergeShardInvariance(t *testing.T) {
	ps := randomProfiles(77, 3, 16)
	want := encodeDB(t, MergePreserving(ps, 4))
	for _, shards := range []int{1, 2, 7, 16} {
		items := make(chan streamItem, 1)
		go func() {
			for _, p := range ps {
				items <- streamItem{p: p}
			}
			close(items)
		}()
		db, _ := mergeItems(context.Background(), items, 4, shards, true, telemetry.New(), nil, nil, nil)
		if got := encodeDB(t, db); !bytes.Equal(got, want) {
			t.Errorf("shards=%d: merged encoding differs from default merge", shards)
		}
	}
}

// TestLoadShardInvariance runs the same property end to end through the
// file pipeline: same directory, different Shards/Workers/SectionParallel
// settings, byte-identical merged database.
func TestLoadShardInvariance(t *testing.T) {
	ps := randomProfiles(101, 2, 24)
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, cfg := range []LoadOptions{
		{Workers: 1, Shards: 1},
		{Workers: 4, Shards: 2},
		{Workers: 4, Shards: 7, SectionParallel: 4},
		{Workers: 8, Shards: 16},
		{Workers: 3, Policy: PolicySalvage, SectionParallel: 2},
	} {
		db, _, err := LoadDirStreamingCtx(context.Background(), dir, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		got := encodeDB(t, db)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%+v: merged encoding differs", cfg)
		}
	}
}

// scalePoint is one cell of the merge-scale sweep.
type scalePoint struct {
	Profiles     int     `json:"profiles"`
	Workers      int     `json:"workers"`
	WallNS       int64   `json:"wall_ns"`
	ProfilesPerS float64 `json:"profiles_per_s"`
}

// scaleCorpus names the sweep corpus shape; bump it when scaleProfile
// changes so the regression check never compares across corpora.
const scaleCorpus = "dense-d6-40fn-v1"

// scaleReport is the BENCH_merge_scale.json schema.
type scaleReport struct {
	Corpus           string       `json:"corpus"`
	NumCPU           int          `json:"num_cpu"`
	GOMAXPROCS       int          `json:"gomaxprocs"`
	Points           []scalePoint `json:"points"`
	Speedup10k8v1    float64      `json:"speedup_10k_8v1"`
	SpeedupEnforced  bool         `json:"speedup_enforced"`
	ConstrainedByCPU bool         `json:"constrained_by_cpus"`
	V2Bytes          int64        `json:"v2_bytes"`
	V3Bytes          int64        `json:"v3_bytes"`
	V3Ratio          float64      `json:"v3_ratio"`
	BestOf           int          `json:"best_of"`
	Timestamp        string       `json:"timestamp"`
}

// TestMergeScaleGate is the 10k-profile scaling gate: it sweeps
// {1k, 10k} profiles x {1, 4, 8} workers through the sharded streaming
// merge, writes BENCH_merge_scale.json, and enforces
//
//   - >= 3x speedup for 10k profiles at 8 workers vs 1 — but only when
//     the machine actually has 8 CPUs to scale onto; on smaller hosts the
//     sweep still runs and the gate degrades to "8 workers must not be
//     more than 40% slower than 1" (bounding the sharding + goroutine
//     overhead an oversubscribed single CPU pays), with
//     constrained_by_cpus recorded so readers know why.
//   - >= 2x v3-vs-v2 size reduction on the sweep corpus, always.
//   - <= 20% regression of 8-worker 1k-profile throughput against the
//     committed BENCH_merge_scale.json, when one exists for the same CPU
//     count.
//
// Opt-in via DCPROF_BENCH_MERGE_SCALE=<output file> (check.sh sets it):
// wall-clock gates are too noisy for the default `go test ./...` tier.
func TestMergeScaleGate(t *testing.T) {
	out := os.Getenv("DCPROF_BENCH_MERGE_SCALE")
	if out == "" {
		t.Skip("set DCPROF_BENCH_MERGE_SCALE=<output file> to run the merge scale gate")
	}

	// Two corpora: 1k realistic thread profiles and a 10k-thread variant
	// with smaller per-thread trees (same merged shape, 10x the files).
	mk := func(n, samples int) string {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("m%d", n))
		var ps []*cct.Profile
		for th := 0; th < n; th++ {
			ps = append(ps, scaleProfile(int64(th), samples))
		}
		if _, err := profio.WriteDir(dir, ps); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	dirs := map[int]string{1000: mk(1000, 120), 10000: mk(10000, 40)}

	const rounds = 3
	wall := map[[2]int]time.Duration{}
	var points []scalePoint
	for _, n := range []int{1000, 10000} {
		for _, w := range []int{1, 4, 8} {
			best := time.Duration(1<<63 - 1)
			for r := 0; r < rounds; r++ {
				t0 := time.Now()
				if _, _, err := LoadDirStreamingCtx(context.Background(), dirs[n],
					LoadOptions{Workers: w, SectionParallel: min(w, cct.NumClasses)}); err != nil {
					t.Fatal(err)
				}
				if d := time.Since(t0); d < best {
					best = d
				}
			}
			wall[[2]int{n, w}] = best
			points = append(points, scalePoint{
				Profiles: n, Workers: w, WallNS: best.Nanoseconds(),
				ProfilesPerS: float64(n) / best.Seconds(),
			})
			t.Logf("%5d profiles, %d workers: %v (%.0f profiles/s)",
				n, w, best, float64(n)/best.Seconds())
		}
	}

	// v3 size win over the same corpus.
	var v2B, v3B int64
	for th := 0; th < 64; th++ {
		p := scaleProfile(int64(th), 120)
		var b2, b3 bytes.Buffer
		if err := profio.WriteProfileV2(&b2, p); err != nil {
			t.Fatal(err)
		}
		if err := profio.WriteProfile(&b3, p); err != nil {
			t.Fatal(err)
		}
		v2B += int64(b2.Len())
		v3B += int64(b3.Len())
	}
	v3Ratio := float64(v2B) / float64(v3B)

	speedup := float64(wall[[2]int{10000, 1}]) / float64(wall[[2]int{10000, 8}])
	enforce := runtime.NumCPU() >= 8
	rep := scaleReport{
		Corpus: scaleCorpus,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points: points, Speedup10k8v1: speedup,
		SpeedupEnforced: enforce, ConstrainedByCPU: !enforce,
		V2Bytes: v2B, V3Bytes: v3B, V3Ratio: v3Ratio,
		BestOf: rounds, Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	// Regression check against the committed report, apples-to-apples only.
	if prev, err := os.ReadFile(out); err == nil {
		var old scaleReport
		if json.Unmarshal(prev, &old) == nil && old.NumCPU == rep.NumCPU && old.Corpus == rep.Corpus {
			var oldTP, newTP float64
			for _, pt := range old.Points {
				if pt.Profiles == 1000 && pt.Workers == 8 {
					oldTP = pt.ProfilesPerS
				}
			}
			for _, pt := range points {
				if pt.Profiles == 1000 && pt.Workers == 8 {
					newTP = pt.ProfilesPerS
				}
			}
			if oldTP > 0 && newTP < 0.8*oldTP {
				t.Errorf("8-worker 1k-profile throughput regressed >20%%: %.0f -> %.0f profiles/s", oldTP, newTP)
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("10k-profile speedup 8v1: %.2fx (enforced: %v, %d CPUs); v3 %.2fx smaller than v2; report %s",
		speedup, enforce, rep.NumCPU, v3Ratio, out)

	if v3Ratio < 2.0 {
		t.Errorf("v3 only %.2fx smaller than v2 on the sweep corpus, want >= 2x", v3Ratio)
	}
	if enforce {
		if speedup < 3.0 {
			t.Errorf("10k-profile 8-vs-1 worker speedup %.2fx, want >= 3x", speedup)
		}
	} else if speedup < 0.6 {
		t.Errorf("10k-profile merge at 8 workers is %.2fx of 1-worker speed on a %d-CPU host — sharding overhead exceeds the 40%% bound", speedup, rep.NumCPU)
	}
}

// scaleProfile builds one thread profile for the scale sweep: a bounded
// symbol set (40 functions, a few lines each) reached through many
// distinct depth-6 calling contexts — the frames-few/contexts-many shape
// of real per-thread CCTs, and the redundancy the v3 frame table encodes
// away.
func scaleProfile(seed int64, samples int) *cct.Profile {
	p := cct.NewProfile(int(seed)/64, int(seed)%64, "IBS@4096")
	for i := 0; i < samples; i++ {
		fn := (i + int(seed)) % 40
		var path []cct.Frame
		for d := 0; d < 6; d++ {
			f := (fn + d*7 + 3) % 40
			path = append(path, cct.Frame{
				Kind: cct.KindCall, Module: "exe",
				Name: fmt.Sprintf("f%d", f), File: fmt.Sprintf("s%d.c", f%7),
				Line: 10 + 10*((i>>uint(d))%3),
			})
		}
		leaf := (fn + i/40) % 40
		path = append(path, cct.Frame{
			Kind: cct.KindStmt, Module: "exe",
			Name: fmt.Sprintf("f%d", leaf), File: fmt.Sprintf("s%d.c", leaf%7),
			Line: 100 + 10*(i%5),
		})
		var v metric.Vector
		v[metric.Samples] = 1
		v[metric.Latency] = uint64(100 + i%400)
		p.Trees[cct.Class(i%cct.NumClasses)].AddSample(path, &v)
	}
	return p
}
