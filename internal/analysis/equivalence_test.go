// End-to-end equivalence: profile a real (simulated) app, write its
// measurement to disk, ingest it back through the streaming pipeline, and
// require the rendered views to match the in-memory (no-I/O) merge
// byte-for-byte. This closes the loop the unit tests cover piecewise:
// profiler -> profio encode -> streaming decode -> pipelined merge -> view.
package analysis_test

import (
	"path/filepath"
	"testing"

	"dcprof/internal/analysis"
	"dcprof/internal/apps/micro"
	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
	"dcprof/internal/view"
)

func microProfiles(t *testing.T) []*cct.Profile {
	t.Helper()
	cfg := micro.DefaultFig1Config()
	cfg.Elems = 1 << 12
	cfg.Iters = 1
	r := micro.RunFig1(cfg)
	if len(r.Result.Profiles) == 0 {
		t.Fatal("micro run produced no profiles")
	}
	// The micro app is single-threaded; replicate its profile under new
	// thread ids so the pipeline has a real multi-profile merge to do (the
	// simulator is deterministic, so this is what an 8-thread run of the
	// same code would have measured).
	var ps []*cct.Profile
	for th := 0; th < 8; th++ {
		for _, p := range r.Result.Profiles {
			c := cct.NewProfile(p.Rank, th, p.Event)
			c.Merge(p)
			ps = append(ps, c)
		}
	}
	return ps
}

func TestMicroPipelineEquivalence(t *testing.T) {
	ps := microProfiles(t)

	// In-memory reference: no I/O, preserving merge.
	inMem := analysis.MergePreserving(ps, 0)

	// Full pipeline: write -> stream-read -> merge.
	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, ps); err != nil {
		t.Fatal(err)
	}
	streamed, st, err := analysis.LoadDirStreaming(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxResident > 2*3+2 {
		t.Errorf("peak residency %d exceeds ~2x workers", st.MaxResident)
	}

	opts := view.Options{Metric: metric.Latency, MaxRows: 50, MaxDepth: 16, MinShare: 0}
	for name, render := range map[string]func(*cct.Profile) string{
		"topdown":   func(p *cct.Profile) string { return view.RenderTopDown(p, opts) },
		"variables": func(p *cct.Profile) string { return view.RenderVariables(p, opts) },
		"bottomup":  func(p *cct.Profile) string { return view.RenderBottomUp(p, opts) },
	} {
		want := render(inMem.Merged)
		got := render(streamed.Merged)
		if want == "" {
			t.Fatalf("%s: empty reference render", name)
		}
		if got != want {
			t.Errorf("%s view differs between in-memory and streamed merge\nin-memory:\n%s\nstreamed:\n%s",
				name, want, got)
		}
	}
	if inMem.Merged.Total() != streamed.Merged.Total() {
		t.Error("metric totals differ between in-memory and streamed merge")
	}
}
