// Package ivmap provides an ordered map from non-overlapping half-open
// address intervals [lo, hi) to values.
//
// The profiler uses it for the two range-indexed lookups the paper's
// attribution step performs on every sample: resolving an effective address
// to the heap block containing it, and resolving per-allocation NUMA policy
// overrides. Intervals are kept in a sorted slice; Lookup is O(log n) and
// mutation is O(n) in the number of live intervals, which tracks the number
// of live tracked allocations rather than the number of samples.
package ivmap

import (
	"fmt"
	"sort"
)

// Interval is one [Lo, Hi) range and its associated value.
type Interval[V any] struct {
	Lo, Hi uint64
	Value  V
}

// Map maps non-overlapping half-open intervals to values of type V.
// The zero value is an empty map ready for use. Map is not safe for
// concurrent mutation; callers synchronize externally.
type Map[V any] struct {
	ivs []Interval[V] // sorted by Lo, pairwise disjoint
}

// Len returns the number of intervals in the map.
func (m *Map[V]) Len() int { return len(m.ivs) }

// search returns the index of the first interval with Lo > addr, minus one:
// the candidate interval that could contain addr, or -1.
func (m *Map[V]) search(addr uint64) int {
	return sort.Search(len(m.ivs), func(i int) bool { return m.ivs[i].Lo > addr }) - 1
}

// Insert adds [lo, hi) -> v. It returns an error if the interval is empty or
// overlaps an existing interval.
func (m *Map[V]) Insert(lo, hi uint64, v V) error {
	if lo >= hi {
		return fmt.Errorf("ivmap: empty interval [%#x, %#x)", lo, hi)
	}
	// Position of the first interval starting after lo.
	i := sort.Search(len(m.ivs), func(i int) bool { return m.ivs[i].Lo > lo })
	if i > 0 && m.ivs[i-1].Hi > lo {
		prev := m.ivs[i-1]
		return fmt.Errorf("ivmap: [%#x, %#x) overlaps existing [%#x, %#x)", lo, hi, prev.Lo, prev.Hi)
	}
	if i < len(m.ivs) && m.ivs[i].Lo < hi {
		next := m.ivs[i]
		return fmt.Errorf("ivmap: [%#x, %#x) overlaps existing [%#x, %#x)", lo, hi, next.Lo, next.Hi)
	}
	m.ivs = append(m.ivs, Interval[V]{})
	copy(m.ivs[i+1:], m.ivs[i:])
	m.ivs[i] = Interval[V]{Lo: lo, Hi: hi, Value: v}
	return nil
}

// Lookup returns the value of the interval containing addr.
func (m *Map[V]) Lookup(addr uint64) (V, bool) {
	iv, ok := m.Find(addr)
	if !ok {
		var zero V
		return zero, false
	}
	return iv.Value, true
}

// Find returns the full interval containing addr.
func (m *Map[V]) Find(addr uint64) (Interval[V], bool) {
	if i := m.search(addr); i >= 0 && addr < m.ivs[i].Hi {
		return m.ivs[i], true
	}
	return Interval[V]{}, false
}

// RemoveAt removes the interval whose lower bound is exactly lo, returning
// its value. It reports false if no interval starts at lo.
func (m *Map[V]) RemoveAt(lo uint64) (V, bool) {
	i := m.search(lo)
	if i < 0 || m.ivs[i].Lo != lo {
		var zero V
		return zero, false
	}
	v := m.ivs[i].Value
	m.ivs = append(m.ivs[:i], m.ivs[i+1:]...)
	return v, true
}

// RemoveContaining removes the interval that contains addr, returning it.
func (m *Map[V]) RemoveContaining(addr uint64) (Interval[V], bool) {
	i := m.search(addr)
	if i < 0 || addr >= m.ivs[i].Hi {
		return Interval[V]{}, false
	}
	iv := m.ivs[i]
	m.ivs = append(m.ivs[:i], m.ivs[i+1:]...)
	return iv, true
}

// Each calls fn on every interval in ascending order. fn returning false
// stops the iteration early.
func (m *Map[V]) Each(fn func(Interval[V]) bool) {
	for _, iv := range m.ivs {
		if !fn(iv) {
			return
		}
	}
}

// Intervals returns a copy of the intervals in ascending order.
func (m *Map[V]) Intervals() []Interval[V] {
	out := make([]Interval[V], len(m.ivs))
	copy(out, m.ivs)
	return out
}

// Clear removes all intervals.
func (m *Map[V]) Clear() { m.ivs = m.ivs[:0] }
