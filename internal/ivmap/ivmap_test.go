package ivmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustInsert(t *testing.T, m *Map[string], lo, hi uint64, v string) {
	t.Helper()
	if err := m.Insert(lo, hi, v); err != nil {
		t.Fatalf("Insert(%#x, %#x): %v", lo, hi, err)
	}
}

func TestInsertLookup(t *testing.T) {
	var m Map[string]
	mustInsert(t, &m, 100, 200, "a")
	mustInsert(t, &m, 300, 400, "b")
	mustInsert(t, &m, 200, 300, "c") // exactly adjacent on both sides

	cases := []struct {
		addr uint64
		want string
		ok   bool
	}{
		{99, "", false},
		{100, "a", true},
		{199, "a", true},
		{200, "c", true},
		{299, "c", true},
		{300, "b", true},
		{399, "b", true},
		{400, "", false},
	}
	for _, c := range cases {
		got, ok := m.Lookup(c.addr)
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%d) = (%q, %v), want (%q, %v)", c.addr, got, ok, c.want, c.ok)
		}
	}
}

func TestInsertRejectsOverlap(t *testing.T) {
	var m Map[string]
	mustInsert(t, &m, 100, 200, "a")
	overlaps := [][2]uint64{
		{100, 200}, {50, 101}, {199, 300}, {150, 160}, {0, 1000},
	}
	for _, ov := range overlaps {
		if err := m.Insert(ov[0], ov[1], "x"); err == nil {
			t.Errorf("Insert(%d, %d) should have failed", ov[0], ov[1])
		}
	}
	if m.Len() != 1 {
		t.Errorf("failed inserts mutated the map: len = %d", m.Len())
	}
}

func TestInsertRejectsEmpty(t *testing.T) {
	var m Map[int]
	if err := m.Insert(5, 5, 1); err == nil {
		t.Error("empty interval accepted")
	}
	if err := m.Insert(6, 5, 1); err == nil {
		t.Error("inverted interval accepted")
	}
}

func TestRemoveAt(t *testing.T) {
	var m Map[string]
	mustInsert(t, &m, 100, 200, "a")
	mustInsert(t, &m, 200, 300, "b")

	if _, ok := m.RemoveAt(150); ok {
		t.Error("RemoveAt(150) should fail: no interval starts there")
	}
	v, ok := m.RemoveAt(100)
	if !ok || v != "a" {
		t.Errorf("RemoveAt(100) = (%q, %v), want (a, true)", v, ok)
	}
	if _, ok := m.Lookup(150); ok {
		t.Error("address 150 still resolves after removal")
	}
	if v, ok := m.Lookup(250); !ok || v != "b" {
		t.Error("unrelated interval disturbed by removal")
	}
	// Freed range can be reinserted.
	mustInsert(t, &m, 100, 200, "a2")
	if v, _ := m.Lookup(199); v != "a2" {
		t.Errorf("reinserted interval not found, got %q", v)
	}
}

func TestRemoveContaining(t *testing.T) {
	var m Map[int]
	if err := m.Insert(1000, 2000, 7); err != nil {
		t.Fatal(err)
	}
	iv, ok := m.RemoveContaining(1500)
	if !ok || iv.Lo != 1000 || iv.Hi != 2000 || iv.Value != 7 {
		t.Errorf("RemoveContaining(1500) = %+v, %v", iv, ok)
	}
	if _, ok := m.RemoveContaining(1500); ok {
		t.Error("second removal should fail")
	}
}

func TestEachOrderAndEarlyStop(t *testing.T) {
	var m Map[int]
	for _, lo := range []uint64{500, 100, 300} {
		if err := m.Insert(lo, lo+10, int(lo)); err != nil {
			t.Fatal(err)
		}
	}
	var seen []uint64
	m.Each(func(iv Interval[int]) bool {
		seen = append(seen, iv.Lo)
		return true
	})
	want := []uint64{100, 300, 500}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", seen, want)
		}
	}
	var count int
	m.Each(func(Interval[int]) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d intervals, want 2", count)
	}
}

func TestClear(t *testing.T) {
	var m Map[int]
	if err := m.Insert(0, 10, 1); err != nil {
		t.Fatal(err)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Errorf("Len after Clear = %d", m.Len())
	}
	if _, ok := m.Lookup(5); ok {
		t.Error("Lookup succeeded after Clear")
	}
}

// naive is a reference model: a list of intervals searched linearly.
type naive struct {
	ivs []Interval[int]
}

func (n *naive) insert(lo, hi uint64, v int) bool {
	if lo >= hi {
		return false
	}
	for _, iv := range n.ivs {
		if lo < iv.Hi && iv.Lo < hi {
			return false
		}
	}
	n.ivs = append(n.ivs, Interval[int]{lo, hi, v})
	return true
}

func (n *naive) lookup(a uint64) (int, bool) {
	for _, iv := range n.ivs {
		if a >= iv.Lo && a < iv.Hi {
			return iv.Value, true
		}
	}
	return 0, false
}

func (n *naive) removeAt(lo uint64) (int, bool) {
	for i, iv := range n.ivs {
		if iv.Lo == lo {
			n.ivs = append(n.ivs[:i], n.ivs[i+1:]...)
			return iv.Value, true
		}
	}
	return 0, false
}

// TestQuickAgainstModel drives random operation sequences against both the
// real map and the naive model and requires identical observable behaviour.
func TestQuickAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var m Map[int]
		var ref naive
		const space = 1 << 12
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // insert
				lo := rng.Uint64() % space
				hi := lo + 1 + rng.Uint64()%64
				v := rng.Int()
				gotErr := m.Insert(lo, hi, v) != nil
				refOK := ref.insert(lo, hi, v)
				if gotErr == refOK {
					return false // exactly one of them must accept
				}
			case 2: // lookup
				a := rng.Uint64() % space
				gv, gok := m.Lookup(a)
				rv, rok := ref.lookup(a)
				if gok != rok || (gok && gv != rv) {
					return false
				}
			case 3: // remove at a known or random lo
				var lo uint64
				if len(ref.ivs) > 0 && rng.Intn(2) == 0 {
					lo = ref.ivs[rng.Intn(len(ref.ivs))].Lo
				} else {
					lo = rng.Uint64() % space
				}
				gv, gok := m.RemoveAt(lo)
				rv, rok := ref.removeAt(lo)
				if gok != rok || (gok && gv != rv) {
					return false
				}
			}
			if m.Len() != len(ref.ivs) {
				return false
			}
		}
		// Final structural invariant: sorted, disjoint.
		ivs := m.Intervals()
		for i := 1; i < len(ivs); i++ {
			if ivs[i-1].Hi > ivs[i].Lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	var m Map[int]
	const n = 4096
	for i := 0; i < n; i++ {
		lo := uint64(i) * 128
		if err := m.Insert(lo, lo+64, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lookup(uint64(i%n)*128 + 32)
	}
}

func BenchmarkInsertRemove(b *testing.B) {
	var m Map[int]
	const n = 1024
	for i := 0; i < n; i++ {
		lo := uint64(i) * 128
		if err := m.Insert(lo, lo+64, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(n+i%n) * 128
		if err := m.Insert(lo, lo+64, i); err != nil {
			b.Fatal(err)
		}
		if _, ok := m.RemoveAt(lo); !ok {
			b.Fatal("remove failed")
		}
	}
}
