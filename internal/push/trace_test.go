package push

// The request-ID join e2e: a push with an injected fault must be
// traceable end to end — the client's retry log, the server's access
// log, and the server's span ring all carry the same per-file request
// ID, so one grep reconstructs what happened to a specific upload.

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dcprof/internal/faultio"
	"dcprof/internal/server"
	"dcprof/internal/telemetry/spanlog"
)

// logBuffer collects slog JSON lines concurrently and parses them back.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) lines(t testing.TB) []map[string]any {
	t.Helper()
	l.mu.Lock()
	raw := l.b.String()
	l.mu.Unlock()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		out = append(out, m)
	}
	return out
}

// TestRequestIDJoin injects the nastiest fault — the server lands the
// upload but the client never hears (FaultDropResponse) — and proves
// the incident is reconstructible by request ID alone:
//
//   - the client logs the retry decision under "<batch>-0000",
//   - the server's access log shows BOTH attempts under that same ID
//     (the 201 whose response was lost, then the 200 duplicate),
//   - the server's span ring carries the ID in the span args.
func TestRequestIDJoin(t *testing.T) {
	serverLog := &logBuffer{}
	spans := spanlog.NewBounded(64)
	srv, err := server.New(server.Config{
		DataDir:   t.TempDir(),
		AccessLog: slog.New(slog.NewJSONHandler(serverLog, nil)),
		Spans:     spans,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	dir := t.TempDir()
	writeMeasurement(t, dir, 1)

	clientLog := &logBuffer{}
	rec := &sleepRecorder{}
	opt := fastOptions(ts.URL, "join", rec)
	opt.RequestID = "joinbatch"
	opt.Logger = slog.New(slog.NewJSONHandler(clientLog, nil))
	opt.Client = &http.Client{Transport: faultio.NewFlakyTransport(nil,
		faultio.FaultPass,         // GET digests (404: empty collection)
		faultio.FaultDropResponse, // POST: server lands it, response lost
		faultio.FaultPass,         // POST retry: 200 duplicate
	)}

	sum, err := Push(context.Background(), dir, opt)
	if err != nil {
		t.Fatalf("push: %v\nsummary: %+v", err, sum)
	}
	const fileID = "joinbatch-0000"
	if sum.RequestID != "joinbatch" {
		t.Errorf("summary request ID = %q, want the supplied batch ID", sum.RequestID)
	}
	if len(sum.Results) != 1 || sum.Results[0].RequestID != fileID {
		t.Fatalf("results %+v, want one result under %s", sum.Results, fileID)
	}
	if sum.Results[0].Status != "duplicate" || sum.Results[0].Attempts != 2 {
		t.Fatalf("result %+v, want duplicate on attempt 2", sum.Results[0])
	}

	// Client side: the retry decision and the final outcome both carry
	// the file's request ID.
	var sawRetry, sawDone bool
	for _, m := range clientLog.lines(t) {
		if m["request_id"] != fileID {
			continue
		}
		switch m["msg"] {
		case "upload.retry":
			sawRetry = true
			if m["attempt"].(float64) != 1 || m["error"] == "" {
				t.Errorf("retry line lacks attempt/error: %v", m)
			}
		case "upload.done":
			sawDone = true
			if m["status"] != "duplicate" || m["attempts"].(float64) != 2 {
				t.Errorf("done line = %v, want duplicate after 2 attempts", m)
			}
		}
	}
	if !sawRetry || !sawDone {
		t.Fatalf("client log missing retry=%v done=%v for %s", sawRetry, sawDone, fileID)
	}

	// Server side: both attempts hit the upload route under the same ID —
	// first the 201 whose response the network ate, then the duplicate
	// 200. The digest preflight logs under "<batch>-digests".
	deadline := time.Now().Add(5 * time.Second)
	var statuses []float64
	for {
		statuses = statuses[:0]
		for _, m := range serverLog.lines(t) {
			if m["route"] == "upload" && m["request_id"] == fileID {
				statuses = append(statuses, m["status"].(float64))
			}
		}
		if len(statuses) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server access log has %d upload lines for %s, want 2:\n%v",
				len(statuses), fileID, serverLog.lines(t))
		}
		time.Sleep(time.Millisecond)
	}
	if statuses[0] != 201 || statuses[1] != 200 {
		t.Errorf("upload statuses = %v, want [201 200] (landed, then duplicate)", statuses)
	}
	foundDigests := false
	for _, m := range serverLog.lines(t) {
		if m["route"] == "digests" && m["request_id"] == "joinbatch-digests" {
			foundDigests = true
		}
	}
	if !foundDigests {
		t.Error("digest preflight not logged under joinbatch-digests")
	}

	// Span ring: the same ID is queryable from the trace buffer.
	foundSpan := false
	for _, e := range spans.Events() {
		if e.Name == "upload" && e.Ph == "X" && e.Args["request_id"] == fileID {
			foundSpan = true
		}
	}
	if !foundSpan {
		t.Errorf("no upload span carries %s; events: %+v", fileID, spans.Events())
	}
}
