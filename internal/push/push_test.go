package push

// The push suite drives the client through the retry matrix with a
// scripted faulty transport and fake servers, and — the chaos smoke —
// through a real dcprofd instance behind faultio.FlakyTransport,
// checking the end-to-end contract: every profile lands exactly once
// and the served view is byte-identical to a cleanly-fed server's.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dcprof/internal/cct"
	"dcprof/internal/faultio"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
	"dcprof/internal/server"
	"dcprof/internal/telemetry"
)

// writeMeasurement fills dir with n synthetic thread profiles and
// returns their encoded bytes by file name. Odd-numbered threads carry a
// temporal sidecar, so every multi-file scenario (clean, chaos, resume)
// pushes a mix of plain and sidecar-bearing v2 files through the digest
// machinery.
func writeMeasurement(t testing.TB, dir string, n int) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for i := 0; i < n; i++ {
		p := cct.NewProfile(0, i, "IBS@4096")
		var v metric.Vector
		v[metric.Samples] = 2
		v[metric.Latency] = uint64(100 + 10*i)
		p.Trees[cct.ClassHeap].AddSample([]cct.Frame{
			{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
			{Kind: cct.KindHeapData, Name: "grid"},
			{Kind: cct.KindStmt, Module: "exe", Name: "smooth", File: "sm.c", Line: 42 + i},
		}, &v)
		if i%2 == 1 {
			attachSidecar(p)
		}
		var buf bytes.Buffer
		if err := profio.WriteProfile(&buf, p); err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("rank00000-thread%05d.dcprof", i)
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		out[name] = buf.Bytes()
	}
	return out
}

// attachSidecar gives the profile a small two-window temporal sidecar
// anchored at its heap leaf.
func attachSidecar(p *cct.Profile) {
	var leaf *cct.Node
	p.Trees[cct.ClassHeap].Walk(func(n *cct.Node, _ int) bool {
		if n.NumChildren() == 0 {
			leaf = n
		}
		return true
	})
	var v metric.Vector
	v[metric.Samples] = 1
	v[metric.Latency] = 50
	p.Temporal = &cct.TimeSeries{Width: 4096, Windows: []cct.TimeWindow{
		{Index: 0, Deltas: []cct.TimeDelta{{Class: cct.ClassHeap, Node: leaf, Metrics: v}}},
		{Index: 2, Deltas: []cct.TimeDelta{{Class: cct.ClassHeap, Node: leaf, Metrics: v}}},
	}}
}

// newDcprofd starts a real server over a temp data dir.
func newDcprofd(t testing.TB) (*server.Server, *httptest.Server, string) {
	t.Helper()
	dataDir := t.TempDir()
	srv, err := server.New(server.Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, dataDir
}

// sleepRecorder is the Sleep seam: records requested delays, never
// actually sleeps.
type sleepRecorder struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (s *sleepRecorder) sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.delays = append(s.delays, d)
	s.mu.Unlock()
	return ctx.Err()
}

// fastOptions are deterministic test options: identity jitter, recorded
// instant sleeps.
func fastOptions(serverURL, collection string, rec *sleepRecorder) Options {
	return Options{
		Server:     serverURL,
		Collection: collection,
		Registry:   telemetry.New(),
		Jitter:     func(d time.Duration) time.Duration { return d },
		Sleep:      rec.sleep,
	}
}

func countStatus(sum Summary, status string) int {
	n := 0
	for _, r := range sum.Results {
		if r.Status == status {
			n++
		}
	}
	return n
}

// TestPushCleanUpload is the no-fault baseline: every file uploads on
// its first attempt.
func TestPushCleanUpload(t *testing.T) {
	_, ts, dataDir := newDcprofd(t)
	dir := t.TempDir()
	writeMeasurement(t, dir, 3)

	rec := &sleepRecorder{}
	sum, err := Push(context.Background(), dir, fastOptions(ts.URL, "clean", rec))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Files != 3 || sum.Uploaded != 3 || sum.Failed != 0 || sum.Retries != 0 {
		t.Fatalf("summary %+v, want 3 files all uploaded first try", sum)
	}
	files, err := profio.Files(filepath.Join(dataDir, "clean"))
	if err != nil || len(files) != 3 {
		t.Fatalf("server holds %d files (err %v), want 3", len(files), err)
	}
}

// TestChaosPushSmoke runs the batch through a scripted gauntlet — dropped
// connections, shed 503s, client timeouts, a reset mid-body, and the
// critical dropped-response (server processed, client never heard) —
// and checks exactly-once delivery: the real server ends with exactly
// one file per profile and serves a view byte-identical to a server fed
// the same measurement without faults.
func TestChaosPushSmoke(t *testing.T) {
	_, chaosTS, chaosData := newDcprofd(t)
	_, cleanTS, _ := newDcprofd(t)

	dir := t.TempDir()
	profiles := writeMeasurement(t, dir, 4)

	// Feed the control server directly.
	for _, data := range profiles {
		resp, err := http.Post(cleanTS.URL+"/collections/run/profiles", "application/octet-stream", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("control upload: status %d", resp.StatusCode)
		}
	}

	// Script, in request order (1 GET digests + the file POSTs):
	flaky := faultio.NewFlakyTransport(nil,
		faultio.FaultDrop,         // GET digests: connection drops → retried
		faultio.FaultPass,         // GET digests: ok (empty collection)
		faultio.Fault5xx,          // file 1: shed with Retry-After
		faultio.FaultDropResponse, // file 1: server lands it, response lost
		faultio.FaultPass,         // file 1: retry answers 200 duplicate
		faultio.FaultTimeout,      // file 2: client-side timeout
		faultio.FaultResetMidBody, // file 2: reset after the (tiny) body
		faultio.FaultPass,         // file 2: retry answers 200 duplicate
		// files 3 and 4: clean.
	)

	rec := &sleepRecorder{}
	opt := fastOptions(chaosTS.URL, "run", rec)
	opt.Client = &http.Client{Transport: flaky}
	sum, err := Push(context.Background(), dir, opt)
	if err != nil {
		t.Fatalf("push through chaos: %v\nsummary: %+v", err, sum)
	}

	// Exactly-once: 4 profiles, 4 files on disk, whichever attempt each
	// one landed on. File 1 deterministically lands on the attempt whose
	// response was dropped, so at least one retry must have answered
	// duplicate — never a second copy. (File 2's mid-body reset may or
	// may not deliver the tiny payload before tripping, so its outcome
	// is uploaded or duplicate, both correct.)
	if sum.Failed != 0 || sum.Uploaded+sum.Duplicates != 4 {
		t.Fatalf("summary %+v, want all 4 delivered (uploaded or duplicate)", sum)
	}
	files, err := profio.Files(filepath.Join(chaosData, "run"))
	if err != nil || len(files) != 4 {
		t.Fatalf("chaos server holds %d files (err %v), want exactly 4", len(files), err)
	}
	if got := countStatus(sum, "duplicate"); got < 1 {
		t.Errorf("%d files report duplicate, want >=1 (the dropped response)", got)
	}
	if sum.Retries != 4 {
		t.Errorf("retries = %d, want 4 (two extra attempts for each of two files)", sum.Retries)
	}
	if got := opt.Registry.Snapshot().Counters["push.retries"]; got != 4 {
		t.Errorf("push.retries = %d, want 4", got)
	}

	// The shed 503 advertised Retry-After: 1 — that exact delay must
	// appear in the sleep schedule, preempting computed backoff.
	found := false
	for _, d := range rec.delays {
		if d == time.Second {
			found = true
		}
	}
	if !found {
		t.Errorf("Retry-After(1s) not honored; slept %v", rec.delays)
	}

	// The served analysis is byte-identical to the cleanly-fed server's.
	chaosView := getBody(t, chaosTS.URL+"/collections/run/topdown")
	cleanView := getBody(t, cleanTS.URL+"/collections/run/topdown")
	if !bytes.Equal(chaosView, cleanView) {
		t.Fatalf("chaos-fed view differs from clean view:\n%s\nvs\n%s", chaosView, cleanView)
	}
}

func getBody(t testing.TB, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes()
}

// TestPushResume interrupts a batch after two files, then re-runs it:
// the second run must skip what the server holds (via the digest list)
// and deliver only the remainder.
func TestPushResume(t *testing.T) {
	_, ts, dataDir := newDcprofd(t)
	dir := t.TempDir()
	profiles := writeMeasurement(t, dir, 4)

	// "First run": two files made it before the interruption.
	sent := 0
	for _, data := range profiles {
		resp, err := http.Post(ts.URL+"/collections/resume/profiles", "application/octet-stream", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if sent++; sent == 2 {
			break
		}
	}

	rec := &sleepRecorder{}
	opt := fastOptions(ts.URL, "resume", rec)
	sum, err := Push(context.Background(), dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed != 2 || sum.Uploaded != 2 || sum.Failed != 0 {
		t.Fatalf("summary %+v, want resumed=2 uploaded=2", sum)
	}
	if got := opt.Registry.Snapshot().Counters["push.resumed"]; got != 2 {
		t.Errorf("push.resumed = %d, want 2", got)
	}
	files, err := profio.Files(filepath.Join(dataDir, "resume"))
	if err != nil || len(files) != 4 {
		t.Fatalf("server holds %d files (err %v), want 4", len(files), err)
	}
}

// TestPushRetryAfterHonored pins the backoff override: a 429 carrying
// Retry-After must set the exact wait, not the exponential schedule.
func TestPushRetryAfterHonored(t *testing.T) {
	var posts int
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			http.NotFound(w, r) // no digest list: empty resume set
			return
		}
		if posts++; posts == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]any{"file": "x", "digest": "d"})
	}))
	defer fake.Close()

	dir := t.TempDir()
	writeMeasurement(t, dir, 1)
	rec := &sleepRecorder{}
	sum, err := Push(context.Background(), dir, fastOptions(fake.URL, "x", rec))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Uploaded != 1 || sum.Retries != 1 {
		t.Fatalf("summary %+v, want one upload after one retry", sum)
	}
	if len(rec.delays) != 1 || rec.delays[0] != 7*time.Second {
		t.Fatalf("slept %v, want exactly [7s] from Retry-After", rec.delays)
	}
}

// TestPermanentFailuresNotRetried: 400 (bad payload) and 507 (quota)
// must fail the file on the first attempt — retrying identical bytes
// cannot change either answer.
func TestPermanentFailuresNotRetried(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusInsufficientStorage} {
		t.Run(fmt.Sprint(status), func(t *testing.T) {
			var posts int
			fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodGet {
					http.NotFound(w, r)
					return
				}
				posts++
				http.Error(w, "no", status)
			}))
			defer fake.Close()

			dir := t.TempDir()
			writeMeasurement(t, dir, 1)
			rec := &sleepRecorder{}
			opt := fastOptions(fake.URL, "x", rec)
			sum, err := Push(context.Background(), dir, opt)
			if err == nil {
				t.Fatal("push succeeded against a permanently failing server")
			}
			if posts != 1 {
				t.Fatalf("server saw %d POSTs, want 1 (no retry on %d)", posts, status)
			}
			if sum.Failed != 1 || sum.Results[0].Attempts != 1 {
				t.Fatalf("summary %+v, want one single-attempt failure", sum)
			}
			if got := opt.Registry.Snapshot().Counters["push.failed"]; got != 1 {
				t.Errorf("push.failed = %d, want 1", got)
			}
		})
	}
}

// TestPushAttemptsExhausted: a persistently shedding server fails the
// file after MaxAttempts, not before and not forever.
func TestPushAttemptsExhausted(t *testing.T) {
	var posts int
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			http.NotFound(w, r)
			return
		}
		posts++
		http.Error(w, "shed", http.StatusServiceUnavailable)
	}))
	defer fake.Close()

	dir := t.TempDir()
	writeMeasurement(t, dir, 1)
	rec := &sleepRecorder{}
	opt := fastOptions(fake.URL, "x", rec)
	opt.MaxAttempts = 3
	sum, err := Push(context.Background(), dir, opt)
	if err == nil {
		t.Fatal("push succeeded against a permanently shedding server")
	}
	if posts != 3 || sum.Results[0].Attempts != 3 {
		t.Fatalf("posts=%d attempts=%d, want exactly MaxAttempts=3", posts, sum.Results[0].Attempts)
	}
	// Backoff doubles from base and is capped.
	opt2 := fastOptions(fake.URL, "x", rec)
	opt2 = opt2.withDefaults()
	if d := backoff(opt2, 1); d != opt2.BaseBackoff {
		t.Errorf("backoff(1) = %v, want base %v", d, opt2.BaseBackoff)
	}
	if d := backoff(opt2, 2); d != 2*opt2.BaseBackoff {
		t.Errorf("backoff(2) = %v, want doubled", d)
	}
	if d := backoff(opt2, 100); d != opt2.MaxBackoff {
		t.Errorf("backoff(100) = %v, want cap %v", d, opt2.MaxBackoff)
	}
}

// TestPushTotalDeadline: the batch deadline cuts off retries and is
// reported, with the summary reflecting how far the batch got.
func TestPushTotalDeadline(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			http.NotFound(w, r)
			return
		}
		http.Error(w, "shed", http.StatusServiceUnavailable)
	}))
	defer fake.Close()

	dir := t.TempDir()
	writeMeasurement(t, dir, 2)
	opt := Options{
		Server:       fake.URL,
		Collection:   "x",
		Registry:     telemetry.New(),
		Jitter:       func(d time.Duration) time.Duration { return d },
		BaseBackoff:  time.Millisecond,
		MaxBackoff:   2 * time.Millisecond,
		TotalTimeout: 150 * time.Millisecond,
	}
	sum, err := Push(context.Background(), dir, opt)
	if err == nil {
		t.Fatal("push met no deadline against a permanently shedding server")
	}
	if sum.Failed == 0 {
		t.Fatalf("summary %+v, want at least one failure at the deadline", sum)
	}
}

// TestPushUnknownTrailerRoundTrip uploads a v2 file carrying both a
// temporal sidecar and an unknown trailing section: ingest validation
// must accept it (unknown sections are CRC-verified and skipped, the
// forward-compatibility contract), the stored bytes must be identical to
// the source — no re-encoding, no trailer stripping — and a re-push must
// recognize the stored copy by digest and resume past it.
func TestPushUnknownTrailerRoundTrip(t *testing.T) {
	_, ts, dataDir := newDcprofd(t)
	dir := t.TempDir()
	profiles := writeMeasurement(t, dir, 2) // thread 1 carries a sidecar

	// Append a future section to the sidecar-bearing file.
	name := "rank00000-thread00001.dcprof"
	img := appendUnknownTrailer(profiles[name], []byte("section from the future"))
	if err := os.WriteFile(filepath.Join(dir, name), img, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := &sleepRecorder{}
	sum, err := Push(context.Background(), dir, fastOptions(ts.URL, "fwd", rec))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Uploaded != 2 || sum.Failed != 0 {
		t.Fatalf("summary %+v, want both files uploaded", sum)
	}

	// The stored copy is byte-identical to what was sent.
	files, err := profio.Files(filepath.Join(dataDir, "fwd"))
	if err != nil || len(files) != 2 {
		t.Fatalf("server holds %d files (err %v), want 2", len(files), err)
	}
	found := false
	for _, f := range files {
		stored, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(stored, img) {
			found = true
		}
	}
	if !found {
		t.Fatal("no stored file matches the unknown-trailer upload byte for byte")
	}

	// The collection still merges and serves.
	getBody(t, ts.URL+"/collections/fwd/topdown")

	// A second push resumes both files off the digest list — the digest
	// of the stored bytes matches the source exactly.
	sum2, err := Push(context.Background(), dir, fastOptions(ts.URL, "fwd", rec))
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Resumed != 2 || sum2.Uploaded != 0 {
		t.Fatalf("re-push summary %+v, want both files resumed by digest", sum2)
	}
}

// appendUnknownTrailer frames payload as a correctly-checksummed trailer
// section under a magic no reader knows.
func appendUnknownTrailer(img, payload []byte) []byte {
	out := append([]byte{}, img...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], 0x58545241 /* "XTRA" */)
	out = append(out, u32[:]...)
	var n [binary.MaxVarintLen64]byte
	out = append(out, n[:binary.PutUvarint(n[:], uint64(len(payload)))]...)
	out = append(out, payload...)
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(payload))
	return append(out, u32[:]...)
}

// TestParseRetryAfter covers both header forms.
func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Errorf("seconds form: %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("absent: %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Errorf("garbage: %v", d)
	}
	if d := parseRetryAfter("-5"); d != 0 {
		t.Errorf("negative: %v", d)
	}
	when := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(when); d <= 0 || d > 10*time.Second {
		t.Errorf("HTTP-date form: %v", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Errorf("past HTTP-date: %v", d)
	}
}
