// Package push implements the batch upload client behind dcpush: it
// walks a measurement directory and delivers every profile to a dcprofd
// collection, surviving the failures a shared profile server actually
// produces — shed requests (429/503 with Retry-After), transient 5xx,
// network drops and timeouts, disk-full (507), and its own restarts.
//
// Reliability comes from two halves that only work together:
//
//   - The server's uploads are idempotent by content digest, so the
//     client may retry blindly: a POST whose response was lost but whose
//     bytes landed answers 200 on the retry instead of double-counting.
//   - The client resumes by asking the collection for its digest list
//     first and skipping files the server already holds, so a re-run of
//     an interrupted batch sends only the remainder.
//
// Retries use capped exponential backoff with jitter, honoring a
// server-provided Retry-After (seconds or HTTP-date) over the computed
// delay. Client faults (400) and quota exhaustion (507) are permanent:
// retrying cannot help, so the file is recorded as failed and the batch
// moves on.
package push

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dcprof/internal/profio"
	"dcprof/internal/telemetry"
)

// requestIDHeader matches the server's join key: dcprofd echoes the ID
// on the response and stamps it on its access-log line and trace span,
// so the client-side retry log and the server-side record of the same
// attempt share an identity.
const requestIDHeader = "X-Request-ID"

// Options configures a push. Zero values get sane defaults; the seams
// (Client, Sleep, Jitter, Now) exist so the fault-injection tests run a
// full retry schedule in microseconds.
type Options struct {
	// Server is the dcprofd base URL, e.g. "http://localhost:7070".
	Server string
	// Collection names the target collection.
	Collection string

	// Client issues the HTTP requests. Defaults to http.DefaultClient;
	// tests wire a faultio.FlakyTransport here.
	Client *http.Client

	// MaxAttempts bounds tries per file (first attempt included).
	// Default 8.
	MaxAttempts int
	// BaseBackoff is the delay after the first failure; it doubles per
	// attempt up to MaxBackoff. Defaults 100ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// PerFileTimeout bounds one file's attempts (all retries included);
	// TotalTimeout bounds the whole batch. Zero disables either.
	PerFileTimeout time.Duration
	TotalTimeout   time.Duration

	// Jitter perturbs a computed backoff delay. Defaults to uniform in
	// [d/2, d); tests pin it to the identity.
	Jitter func(d time.Duration) time.Duration
	// Sleep waits between attempts. Defaults to a context-aware sleep;
	// tests substitute a recorder so no real time passes.
	Sleep func(ctx context.Context, d time.Duration) error

	// Registry receives push.* telemetry. Nil means a private registry.
	Registry *telemetry.Registry
	// Logf, when set, receives one line per notable event (skip, retry,
	// failure). Nil silences progress.
	Logf func(format string, args ...any)
	// Logger, when set, receives the same events as structured records
	// (one per skip/retry/failure/outcome, each carrying the request ID)
	// — the client half of the request-ID join.
	Logger *slog.Logger
	// RequestID identifies the batch; per-file IDs derive from it as
	// "<batch>-<index>" and ride X-Request-ID on every attempt. Empty
	// generates a random one (see Summary.RequestID).
	RequestID string
}

// FileResult records the outcome for one profile file.
type FileResult struct {
	File     string `json:"file"`
	Digest   string `json:"digest"`
	Bytes    int64  `json:"bytes"`
	Attempts int    `json:"attempts,omitempty"`
	// Status is "uploaded", "duplicate", "resumed", or "failed".
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// RequestID is the X-Request-ID every attempt for this file carried —
	// quote it to find the server-side access-log lines and spans.
	RequestID string `json:"request_id,omitempty"`
}

// Summary is the batch outcome dcpush prints.
type Summary struct {
	Collection string `json:"collection"`
	// RequestID is the batch identity; per-file IDs are "<this>-<index>".
	RequestID  string       `json:"request_id,omitempty"`
	Files      int          `json:"files"`
	Uploaded   int          `json:"uploaded"`
	Resumed    int          `json:"resumed"`
	Duplicates int          `json:"duplicates"`
	Failed     int          `json:"failed"`
	Retries    int          `json:"retries"`
	Bytes      int64        `json:"bytes"`
	Results    []FileResult `json:"results,omitempty"`
}

// uploadResult mirrors the server's UploadResult fields the client needs.
type uploadResult struct {
	File      string `json:"file"`
	Digest    string `json:"digest"`
	Duplicate bool   `json:"duplicate"`
}

// permanentError marks a failure no retry can fix (400, 507).
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// retryableError carries a failure worth another attempt, plus the
// server's Retry-After wish when it sent one.
type retryableError struct {
	err        error
	retryAfter time.Duration // 0 = none advertised
}

func (e retryableError) Error() string { return e.err.Error() }
func (e retryableError) Unwrap() error { return e.err }

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// event emits one structured record when a Logger is configured. Every
// event carries the request ID so `grep <id>` joins the client's view
// of an upload with the server's.
func (o *Options) event(level slog.Level, msg, reqID string, attrs ...slog.Attr) {
	if o.Logger == nil {
		return
	}
	attrs = append([]slog.Attr{slog.String("request_id", reqID)}, attrs...)
	o.Logger.LogAttrs(context.Background(), level, msg, attrs...)
}

// newBatchID returns a 12-hex-char random batch identity.
func newBatchID() string {
	var b [6]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "push"
	}
	return hex.EncodeToString(b[:])
}

// withDefaults fills the zero values.
func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Jitter == nil {
		o.Jitter = func(d time.Duration) time.Duration {
			if d <= 1 {
				return d
			}
			return d/2 + time.Duration(rand.Int63n(int64(d/2)))
		}
	}
	if o.Sleep == nil {
		o.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	if o.Registry == nil {
		o.Registry = telemetry.New()
	}
	if o.RequestID == "" {
		o.RequestID = newBatchID()
	}
	return o
}

// Push uploads every profile in dir to the configured collection and
// returns the per-file outcomes. The error is non-nil when the batch is
// incomplete — any file failed permanently, exhausted its attempts, or a
// deadline expired — but the Summary is always populated as far as the
// batch got.
func Push(ctx context.Context, dir string, opt Options) (Summary, error) {
	opt = opt.withDefaults()
	sum := Summary{Collection: opt.Collection, RequestID: opt.RequestID}
	if opt.Server == "" || opt.Collection == "" {
		return sum, errors.New("push: Server and Collection are required")
	}
	if opt.TotalTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.TotalTimeout)
		defer cancel()
	}

	files, err := profio.Files(dir)
	if err != nil {
		return sum, fmt.Errorf("push: %w", err)
	}
	sum.Files = len(files)
	opt.Registry.Counter("push.files").Add(uint64(len(files)))

	// Resume surface: digests the collection already holds. A missing
	// collection (404) simply means nothing to skip.
	have, err := remoteDigests(ctx, opt)
	if err != nil {
		return sum, err
	}

	retries := opt.Registry.Counter("push.retries")
	var firstErr error
	for i, path := range files {
		res := pushFile(ctx, path, fmt.Sprintf("%s-%04d", opt.RequestID, i), have, opt, &sum)
		sum.Results = append(sum.Results, res)
		sum.Retries += maxInt(0, res.Attempts-1)
		retries.Add(uint64(maxInt(0, res.Attempts-1)))
		if res.Status == "failed" && firstErr == nil {
			firstErr = fmt.Errorf("push: %s: %s", filepath.Base(res.File), res.Error)
		}
		if ctx.Err() != nil {
			// The batch deadline expired: remaining files are not
			// attempted, and the summary says how far we got.
			if firstErr == nil {
				firstErr = fmt.Errorf("push: %w", ctx.Err())
			}
			break
		}
	}
	return sum, firstErr
}

// pushFile delivers one file: hash, resume-skip, then the retry loop.
// Every attempt carries reqID in X-Request-ID, and every retry/backoff
// decision is logged against it.
func pushFile(ctx context.Context, path, reqID string, have map[string]bool, opt Options, sum *Summary) FileResult {
	res := FileResult{File: path, RequestID: reqID}
	data, err := os.ReadFile(path)
	if err != nil {
		res.Status = "failed"
		res.Error = err.Error()
		sum.Failed++
		opt.Registry.Counter("push.failed").Inc()
		opt.event(slog.LevelError, "read.failed", reqID,
			slog.String("file", filepath.Base(path)), slog.String("error", err.Error()))
		return res
	}
	res.Bytes = int64(len(data))
	d := sha256.Sum256(data)
	res.Digest = hex.EncodeToString(d[:])

	if have[res.Digest] {
		res.Status = "resumed"
		sum.Resumed++
		opt.Registry.Counter("push.resumed").Inc()
		opt.logf("skip %s: server already holds %s", filepath.Base(path), res.Digest[:12])
		opt.event(slog.LevelInfo, "resume.skip", reqID,
			slog.String("file", filepath.Base(path)), slog.String("digest", res.Digest[:12]))
		return res
	}

	if opt.PerFileTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.PerFileTimeout)
		defer cancel()
	}

	var lastErr error
	for attempt := 1; attempt <= opt.MaxAttempts; attempt++ {
		res.Attempts = attempt
		dup, err := postOnce(ctx, data, reqID, opt)
		if err == nil {
			if dup {
				res.Status = "duplicate"
				sum.Duplicates++
				opt.Registry.Counter("push.duplicates").Inc()
			} else {
				res.Status = "uploaded"
				sum.Uploaded++
				sum.Bytes += res.Bytes
				opt.Registry.Counter("push.uploaded").Inc()
				opt.Registry.Counter("push.bytes").Add(uint64(len(data)))
			}
			opt.event(slog.LevelInfo, "upload.done", reqID,
				slog.String("file", filepath.Base(path)),
				slog.String("status", res.Status),
				slog.Int("attempts", attempt),
				slog.Int64("bytes", res.Bytes))
			return res
		}
		lastErr = err

		var perm permanentError
		if errors.As(err, &perm) || ctx.Err() != nil {
			break
		}
		delay := backoff(opt, attempt)
		var retry retryableError
		if errors.As(err, &retry) && retry.retryAfter > 0 {
			delay = retry.retryAfter
		}
		opt.logf("retry %s in %v after attempt %d: %v", filepath.Base(path), delay, attempt, err)
		opt.event(slog.LevelWarn, "upload.retry", reqID,
			slog.String("file", filepath.Base(path)),
			slog.Int("attempt", attempt),
			slog.Int64("delay_ms", delay.Milliseconds()),
			slog.String("error", err.Error()))
		if opt.Sleep(ctx, delay) != nil {
			break // deadline expired mid-backoff
		}
	}
	res.Status = "failed"
	res.Error = lastErr.Error()
	sum.Failed++
	opt.Registry.Counter("push.failed").Inc()
	opt.logf("give up on %s after %d attempts: %v", filepath.Base(path), res.Attempts, lastErr)
	opt.event(slog.LevelError, "upload.failed", reqID,
		slog.String("file", filepath.Base(path)),
		slog.Int("attempts", res.Attempts),
		slog.String("error", lastErr.Error()))
	return res
}

// postOnce performs a single upload attempt and classifies the outcome:
// (false, nil) uploaded, (true, nil) duplicate, error otherwise —
// permanentError when retrying cannot help.
func postOnce(ctx context.Context, data []byte, reqID string, opt Options) (dup bool, err error) {
	url := strings.TrimSuffix(opt.Server, "/") + "/collections/" + opt.Collection + "/profiles"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return false, permanentError{err}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(requestIDHeader, reqID)
	resp, err := opt.Client.Do(req)
	if err != nil {
		return false, retryableError{err: err}
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))

	switch resp.StatusCode {
	case http.StatusCreated:
		return false, nil
	case http.StatusOK:
		var ur uploadResult
		if json.Unmarshal(body, &ur) == nil && ur.Duplicate {
			return true, nil
		}
		return false, nil
	case http.StatusBadRequest, http.StatusInsufficientStorage:
		// Client fault or disk/quota exhaustion: retrying the same bytes
		// cannot succeed.
		return false, permanentError{fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))}
	default:
		return false, retryableError{
			err:        fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body))),
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
}

// remoteDigests fetches the collection's digest list; a missing
// collection yields an empty set. The fetch itself retries like an
// upload — a freshly shedding server must not fail the whole batch.
func remoteDigests(ctx context.Context, opt Options) (map[string]bool, error) {
	url := strings.TrimSuffix(opt.Server, "/") + "/collections/" + opt.Collection + "/digests"
	var lastErr error
	for attempt := 1; attempt <= opt.MaxAttempts; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, fmt.Errorf("push: %w", err)
		}
		req.Header.Set(requestIDHeader, opt.RequestID+"-digests")
		resp, err := opt.Client.Do(req)
		if err != nil {
			lastErr = err
		} else {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				var payload struct {
					Digests []string `json:"digests"`
				}
				if err := json.Unmarshal(body, &payload); err != nil {
					return nil, fmt.Errorf("push: digest list: %w", err)
				}
				have := make(map[string]bool, len(payload.Digests))
				for _, d := range payload.Digests {
					have[d] = true
				}
				return have, nil
			case resp.StatusCode == http.StatusNotFound:
				return map[string]bool{}, nil
			case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
				lastErr = fmt.Errorf("digest list: status %d", resp.StatusCode)
				if ra := parseRetryAfter(resp.Header.Get("Retry-After")); ra > 0 {
					if opt.Sleep(ctx, ra) != nil {
						return nil, fmt.Errorf("push: %w", ctx.Err())
					}
					continue
				}
			default:
				return nil, fmt.Errorf("push: digest list: status %d", resp.StatusCode)
			}
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("push: %w", ctx.Err())
		}
		if opt.Sleep(ctx, backoff(opt, attempt)) != nil {
			return nil, fmt.Errorf("push: %w", ctx.Err())
		}
	}
	return nil, fmt.Errorf("push: %w", lastErr)
}

// backoff computes the jittered, capped exponential delay after attempt n.
func backoff(opt Options, attempt int) time.Duration {
	d := opt.BaseBackoff
	for i := 1; i < attempt && d < opt.MaxBackoff; i++ {
		d *= 2
	}
	if d > opt.MaxBackoff {
		d = opt.MaxBackoff
	}
	return opt.Jitter(d)
}

// parseRetryAfter understands both Retry-After forms: delta-seconds and
// an HTTP-date. Unparseable or absent values yield zero.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(v); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
