module dcprof

go 1.22
